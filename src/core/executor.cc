#include "core/executor.h"

#include <algorithm>
#include <memory>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ml/training_matrix.h"

namespace amalur {
namespace core {

namespace {

/// Trains the requested model over any backend.
ml::LinearModel TrainOver(const ml::TrainingMatrix& features,
                          const la::DenseMatrix& labels,
                          const TrainRequest& request) {
  if (request.task == TrainingTask::kLogisticRegression) {
    return ml::TrainLogisticRegression(features, labels, request.gd);
  }
  return ml::TrainLinearRegression(features, labels, request.gd);
}

}  // namespace

const char* TrainingTaskToString(TrainingTask task) {
  switch (task) {
    case TrainingTask::kLinearRegression:
      return "linear_regression";
    case TrainingTask::kLogisticRegression:
      return "logistic_regression";
  }
  return "?";
}

Result<TrainOutcome> Executor::Run(const metadata::DiMetadata& metadata,
                                   const Plan& plan,
                                   const TrainRequest& request) const {
  const auto label_index =
      metadata.target_schema().IndexOf(request.label_column);
  if (!label_index.has_value()) {
    return Status::NotFound("label column '", request.label_column,
                            "' in the target schema");
  }

  TrainOutcome outcome;
  outcome.strategy_used = plan.strategy;
  // Scope the request's thread knob over the whole run: every kernel under
  // this frame (dense, CSR, factorized, sigmoid) picks it up. Report the
  // parallelism actually applied, not the request — a knob above the pool's
  // capacity still chunks for the requested count but executes narrower.
  common::ScopedNumThreads thread_scope(request.num_threads);
  outcome.threads_used = std::min(common::NumThreads(),
                                  common::ThreadPool::Global()->parallelism());
  Stopwatch stopwatch;

  switch (plan.strategy) {
    case ExecutionStrategy::kFactorize: {
      auto table =
          std::make_shared<factorized::FactorizedTable>(metadata);
      ml::FactorizedFeatures features(table, *label_index);
      const la::DenseMatrix labels = features.Labels();
      ml::LinearModel model = TrainOver(features, labels, request);
      outcome.weights = std::move(model.weights);
      outcome.loss_history = std::move(model.loss_history);
      outcome.factorized_table = std::move(table);
      break;
    }
    case ExecutionStrategy::kMaterialize: {
      const la::DenseMatrix target = metadata.MaterializeTargetMatrix();
      std::vector<size_t> feature_cols;
      for (size_t j = 0; j < target.cols(); ++j) {
        if (j != *label_index) feature_cols.push_back(j);
      }
      ml::MaterializedMatrix features(target.SelectColumns(feature_cols));
      ml::MaterializedMatrix label_view(target.SelectColumns({*label_index}));
      ml::LinearModel model =
          TrainOver(features, label_view.data(), request);
      outcome.weights = std::move(model.weights);
      outcome.loss_history = std::move(model.loss_history);
      break;
    }
    case ExecutionStrategy::kFederate: {
      if (request.task != TrainingTask::kLinearRegression) {
        return Status::Unimplemented(
            "federated execution currently supports linear regression");
      }
      AMALUR_ASSIGN_OR_RETURN(federated::VflAlignment alignment,
                              federated::AlignForVfl(metadata, *label_index));
      federated::MessageBus bus;
      federated::VflOptions options;
      options.iterations = request.gd.iterations;
      options.learning_rate = request.gd.learning_rate;
      options.l2 = request.gd.l2;
      options.privacy = request.privacy;
      AMALUR_ASSIGN_OR_RETURN(
          federated::VflResult result,
          federated::TrainVerticalFlr(alignment.xa, alignment.labels,
                                      alignment.xb, options, &bus));
      // Re-assemble [θ_A; θ_B] into target-feature order (feature index =
      // target column index minus the label offset).
      outcome.weights =
          la::DenseMatrix(metadata.target_cols() - 1, 1);
      auto feature_index = [&](size_t target_col) {
        return target_col < *label_index ? target_col : target_col - 1;
      };
      for (size_t j = 0; j < alignment.a_columns.size(); ++j) {
        outcome.weights.At(feature_index(alignment.a_columns[j]), 0) =
            result.theta_a.At(j, 0);
      }
      for (size_t j = 0; j < alignment.b_columns.size(); ++j) {
        outcome.weights.At(feature_index(alignment.b_columns[j]), 0) =
            result.theta_b.At(j, 0);
      }
      outcome.loss_history = std::move(result.loss_history);
      outcome.bytes_transferred = result.bytes_transferred;
      break;
    }
  }
  outcome.seconds = stopwatch.ElapsedSeconds();
  return outcome;
}

}  // namespace core
}  // namespace amalur
