#include "core/executor.h"

#include <algorithm>
#include <memory>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ml/training_matrix.h"

namespace amalur {
namespace core {

namespace {

/// Trains the requested model over any backend.
ml::LinearModel TrainOver(const ml::TrainingMatrix& features,
                          const la::DenseMatrix& labels,
                          const TrainRequest& request) {
  if (request.task == TrainingTask::kLogisticRegression) {
    return ml::TrainLogisticRegression(features, labels, request.gd);
  }
  return ml::TrainLinearRegression(features, labels, request.gd);
}

}  // namespace

const char* TrainingTaskToString(TrainingTask task) {
  switch (task) {
    case TrainingTask::kLinearRegression:
      return "linear_regression";
    case TrainingTask::kLogisticRegression:
      return "logistic_regression";
  }
  return "?";
}

Result<TrainOutcome> Executor::Run(const metadata::DiMetadata& metadata,
                                   const Plan& plan,
                                   const TrainRequest& request) const {
  const auto label_index =
      metadata.target_schema().IndexOf(request.label_column);
  if (!label_index.has_value()) {
    return Status::NotFound("label column '", request.label_column,
                            "' in the target schema");
  }

  TrainOutcome outcome;
  outcome.strategy_used = plan.strategy;
  // Scope the request's thread knob over the whole run: every kernel under
  // this frame (dense, CSR, factorized, sigmoid) picks it up. Report the
  // parallelism actually applied, not the request — a knob above the pool's
  // capacity still chunks for the requested count but executes narrower.
  common::ScopedNumThreads thread_scope(request.num_threads);
  outcome.threads_used = std::min(common::NumThreads(),
                                  common::ThreadPool::Global()->parallelism());
  Stopwatch stopwatch;

  switch (plan.strategy) {
    case ExecutionStrategy::kFactorize: {
      auto table =
          std::make_shared<factorized::FactorizedTable>(metadata);
      ml::FactorizedFeatures features(table, *label_index);
      const la::DenseMatrix labels = features.Labels();
      ml::LinearModel model = TrainOver(features, labels, request);
      outcome.weights = std::move(model.weights);
      outcome.loss_history = std::move(model.loss_history);
      outcome.factorized_table = std::move(table);
      break;
    }
    case ExecutionStrategy::kMaterialize: {
      const la::DenseMatrix target = metadata.MaterializeTargetMatrix();
      std::vector<size_t> feature_cols;
      for (size_t j = 0; j < target.cols(); ++j) {
        if (j != *label_index) feature_cols.push_back(j);
      }
      ml::MaterializedMatrix features(target.SelectColumns(feature_cols));
      ml::MaterializedMatrix label_view(target.SelectColumns({*label_index}));
      ml::LinearModel model =
          TrainOver(features, label_view.data(), request);
      outcome.weights = std::move(model.weights);
      outcome.loss_history = std::move(model.loss_history);
      break;
    }
    case ExecutionStrategy::kFederate: {
      if (request.task != TrainingTask::kLinearRegression) {
        return Status::Unimplemented(
            "federated execution currently supports linear regression");
      }
      // The integration's shape picks the protocol: horizontally
      // partitioned scenarios (unions, union-of-stars) run FedAvg with one
      // participant per fact shard; vertically partitioned ones (pairwise
      // joins, stars, snowflakes — whose silos carry composed indicator
      // blocks) run the n-ary vertical FLR with one party per silo. A
      // request carrying a chaos schedule trains over the fault-injecting
      // bus; the protocols are hardened either way (the reliability layer
      // is byte-transparent on a healthy wire).
      std::unique_ptr<federated::MessageBus> bus_storage;
      if (request.fault_schedule != nullptr) {
        bus_storage = std::make_unique<federated::FaultyMessageBus>(
            *request.fault_schedule);
      } else {
        bus_storage = std::make_unique<federated::MessageBus>();
      }
      federated::MessageBus* bus = bus_storage.get();
      if (metadata.IsHorizontallyPartitioned()) {
        AMALUR_ASSIGN_OR_RETURN(std::vector<federated::HflPartition> shards,
                                federated::AlignForHfl(metadata, *label_index));
        federated::HflOptions options;
        options.rounds = request.gd.iterations;
        options.local_epochs = 1;
        options.learning_rate = request.gd.learning_rate;
        options.l2 = request.gd.l2;
        options.secure_aggregation =
            request.privacy != federated::VflPrivacy::kPlaintext;
        options.policy = request.federated_policy;
        AMALUR_ASSIGN_OR_RETURN(
            federated::HflResult result,
            federated::TrainHorizontalFlr(shards, options, bus));
        // AlignForHfl builds features as the target schema minus the label,
        // so the global model is already in target-feature order.
        outcome.weights = std::move(result.weights);
        outcome.loss_history = std::move(result.loss_history);
        outcome.bytes_transferred = result.bytes_transferred;
        outcome.federated_silos = shards.size();
        outcome.federated_rounds = options.rounds;
        outcome.silos_dropped = std::move(result.silos_dropped);
        outcome.rounds_degraded = result.rounds_degraded;
        outcome.retries = result.retries;
        outcome.bytes_wasted = result.bytes_wasted;
        break;
      }
      AMALUR_ASSIGN_OR_RETURN(
          federated::NaryVflAlignment alignment,
          federated::AlignForVflNary(metadata, *label_index));
      federated::VflOptions options;
      options.iterations = request.gd.iterations;
      options.learning_rate = request.gd.learning_rate;
      options.l2 = request.gd.l2;
      options.privacy = request.privacy;
      options.policy = request.federated_policy;
      AMALUR_ASSIGN_OR_RETURN(
          federated::NaryVflResult result,
          federated::TrainVerticalFlrNary(alignment.parties, alignment.labels,
                                          options, bus));
      // Re-assemble [θ_0; ...; θ_{N−1}] into target-feature order (feature
      // index = target column index minus the label offset).
      outcome.weights = la::DenseMatrix(metadata.target_cols() - 1, 1);
      auto feature_index = [&](size_t target_col) {
        return target_col < *label_index ? target_col : target_col - 1;
      };
      for (size_t k = 0; k < alignment.parties.size(); ++k) {
        const federated::VflParty& party = alignment.parties[k];
        for (size_t j = 0; j < party.columns.size(); ++j) {
          outcome.weights.At(feature_index(party.columns[j]), 0) =
              result.thetas[k].At(j, 0);
        }
      }
      outcome.loss_history = std::move(result.loss_history);
      outcome.bytes_transferred = result.bytes_transferred;
      outcome.federated_silos = alignment.parties.size();
      outcome.federated_rounds = result.rounds;
      outcome.silos_dropped = std::move(result.silos_dropped);
      outcome.rounds_degraded = result.rounds_degraded;
      outcome.retries = result.retries;
      outcome.bytes_wasted = result.bytes_wasted;
      break;
    }
  }
  outcome.seconds = stopwatch.ElapsedSeconds();
  return outcome;
}

}  // namespace core
}  // namespace amalur
