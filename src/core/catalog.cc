#include "core/catalog.h"

#include "common/status.h"
#include "common/thread_annotations.h"

namespace amalur {
namespace core {

// Locking idiom: shared_lock for lookups, unique_lock for mutation. See the
// header for why dereferencing a returned pointer after the lock is
// released is safe (node-stable maps, no overwrites except the pair caches).

Status Catalog::RegisterSource(SourceEntry entry) {
  if (entry.name.empty()) return Status::InvalidArgument("empty source name");
  common::MutexLock lock(mu_);
  auto [it, inserted] = sources_.try_emplace(entry.name, std::move(entry));
  if (!inserted) return Status::AlreadyExists("source '", it->first, "'");
  return Status::OK();
}

Result<const SourceEntry*> Catalog::GetSource(const std::string& name) const {
  common::SharedLock lock(mu_);
  auto it = sources_.find(name);
  if (it == sources_.end()) return Status::NotFound("source '", name, "'");
  return &it->second;
}

bool Catalog::HasSource(const std::string& name) const {
  common::SharedLock lock(mu_);
  return sources_.count(name) > 0;
}

std::vector<std::string> Catalog::SourceNames() const {
  common::SharedLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, entry] : sources_) names.push_back(name);
  return names;
}

Status Catalog::RegisterIntegration(IntegrationHandle entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("empty integration name");
  }
  common::MutexLock lock(mu_);
  auto [it, inserted] = integrations_.try_emplace(entry.name, std::move(entry));
  if (!inserted) return Status::AlreadyExists("integration '", it->first, "'");
  return Status::OK();
}

Result<const IntegrationHandle*> Catalog::GetIntegration(
    const std::string& name) const {
  common::SharedLock lock(mu_);
  auto it = integrations_.find(name);
  if (it == integrations_.end()) {
    return Status::NotFound("integration '", name, "'");
  }
  return &it->second;
}

bool Catalog::HasIntegration(const std::string& name) const {
  common::SharedLock lock(mu_);
  return integrations_.count(name) > 0;
}

std::vector<std::string> Catalog::IntegrationNames() const {
  common::SharedLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(integrations_.size());
  for (const auto& [name, entry] : integrations_) names.push_back(name);
  return names;
}

void Catalog::StoreColumnMatches(const std::string& left,
                                 const std::string& right,
                                 std::vector<integration::ColumnMatch> matches) {
  common::MutexLock lock(mu_);
  column_matches_[{left, right}] = std::move(matches);
}

Result<const std::vector<integration::ColumnMatch>*> Catalog::GetColumnMatches(
    const std::string& left, const std::string& right) const {
  common::SharedLock lock(mu_);
  auto it = column_matches_.find({left, right});
  if (it == column_matches_.end()) {
    return Status::NotFound("column matches for (", left, ", ", right, ")");
  }
  return &it->second;
}

void Catalog::StoreRowMatching(const std::string& left, const std::string& right,
                               rel::RowMatching matching) {
  common::MutexLock lock(mu_);
  row_matchings_[{left, right}] = std::move(matching);
}

Result<const rel::RowMatching*> Catalog::GetRowMatching(
    const std::string& left, const std::string& right) const {
  common::SharedLock lock(mu_);
  auto it = row_matchings_.find({left, right});
  if (it == row_matchings_.end()) {
    return Status::NotFound("row matching for (", left, ", ", right, ")");
  }
  return &it->second;
}

Status Catalog::RegisterModel(ModelEntry entry) {
  if (entry.name.empty()) return Status::InvalidArgument("empty model name");
  common::MutexLock lock(mu_);
  auto [it, inserted] = models_.try_emplace(entry.name, std::move(entry));
  if (!inserted) return Status::AlreadyExists("model '", it->first, "'");
  return Status::OK();
}

Result<const ModelEntry*> Catalog::GetModel(const std::string& name) const {
  common::SharedLock lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) return Status::NotFound("model '", name, "'");
  return &it->second;
}

std::vector<std::string> Catalog::ModelNames() const {
  common::SharedLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

}  // namespace core
}  // namespace amalur
