#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "integration/schema_mapping.h"
#include "integration/schema_matching.h"
#include "metadata/di_metadata.h"
#include "relational/join.h"
#include "relational/table.h"

/// \file catalog.h
/// The hybrid metadata catalog of Figure 3: basic metadata of each source
/// (schema, provenance, privacy constraints), DI metadata produced by
/// matching/resolution/integration runs, and model metadata of trained
/// models. In this in-process reproduction the catalog also holds the data
/// handles; in a deployed system those would be silo connections.
///
/// Registration semantics are uniform across sources, integrations and
/// models: names are unique, re-registering an existing name returns
/// `kAlreadyExists` (never a silent overwrite), and the empty name is
/// `kInvalidArgument`.
///
/// Lifetime rules for catalog lookups: `GetSource` / `GetIntegration` /
/// `GetModel` return pointers into the catalog's own storage (node-stable
/// maps). A returned pointer stays valid until the catalog is destroyed —
/// registering further entries does not move existing ones, and the catalog
/// never erases — but callers that need a value to outlive the catalog must
/// copy it. `IntegrationHandle` is designed for exactly that: it is
/// self-contained (it owns the derived metadata), so a copied handle
/// survives any catalog mutation.
///
/// Thread safety: every method takes the catalog's reader/writer lock
/// (shared for lookups, exclusive for mutation), so concurrent lookups —
/// e.g. serving-tier deploys resolving models while an orchestrator
/// registers new sources — are safe. The lock covers the *map structure*;
/// a returned pointer is lock-free to read because registered entries
/// (sources, integrations, models) are immutable once inserted — the
/// `kAlreadyExists` semantics forbid overwrites and nothing erases. The one
/// exception: the per-pair caches behind `StoreColumnMatches` /
/// `StoreRowMatching` MAY be overwritten by re-integrating the same source
/// pair, so pointers from their getters are only stable while no
/// integration over that pair runs. Serving never relies on any of this —
/// a `serving::DeployedModel` copies everything it needs at deploy time.

namespace amalur {
namespace core {

/// One edge of an integration graph: how the rows of two registered sources
/// relate. `left` is the retained/parent side (a fact table or an upstream
/// dimension), `right` the child. Join kinds: `kLeftJoin` attaches a
/// dimension (snowflake chains allowed — a dimension may itself be a
/// `left`, and several edges may share one `right`: a conformed dimension);
/// `kInnerJoin` attaches a dimension AND restricts the target to rows where
/// it matched; `kUnion` stacks a sibling fact shard; `kFullOuterJoin` is
/// valid only on single-edge (pairwise) specs.
struct IntegrationEdge {
  std::string left;
  std::string right;
  rel::JoinKind kind = rel::JoinKind::kLeftJoin;
};

/// One registered data source (a silo's table).
struct SourceEntry {
  std::string name;
  rel::Table table;
  /// Provenance: where the silo lives (free-form, e.g. "hospital-er").
  std::string silo_location;
  /// Privacy constraint: data may not leave the silo (forces federated
  /// execution, §II.C).
  bool privacy_sensitive = false;
};

/// A completed integration over n >= 2 registered sources: everything the
/// automatic pipeline derived. Handles are self-contained (they copy the
/// derived metadata) and can outlive catalog mutations; named handles are
/// additionally stored in the catalog as first-class reusable objects.
struct IntegrationHandle {
  /// Catalog registration name; empty for ad-hoc (unregistered) handles.
  std::string name;
  /// Participating sources in topological order; element 0 is the fact root
  /// (the base of pairwise scenarios).
  std::vector<std::string> source_names;
  /// The integration graph's edges in topological order (parents before
  /// children). Pairwise scenarios have one edge; specs given in the legacy
  /// `sources`/`relationships` form are lowered into edges here.
  std::vector<IntegrationEdge> edges;
  /// Structural shape of the graph (also reported by `Amalur::Explain`).
  metadata::IntegrationShape shape = metadata::IntegrationShape::kPairwise;
  /// Schema-matching output per edge: `edge_matches[i]` relates
  /// `edges[i].left` to `edges[i].right`.
  std::vector<std::vector<integration::ColumnMatch>> edge_matches;
  integration::SchemaMapping mapping;
  /// Row matchings per edge, same indexing as `edge_matches` (entries are
  /// empty for union edges, which match no rows).
  std::vector<rel::RowMatching> matchings;
  metadata::DiMetadata metadata;
  /// True when any participating source forbids data movement.
  bool privacy_constrained = false;
};

/// Metadata of a trained model (the model-zoo side of the catalog [24]).
struct ModelEntry {
  std::string name;
  std::string task;  // e.g. "linear_regression"
  std::map<std::string, double> hyperparameters;
  /// Evaluation metric value (task-dependent: MSE, accuracy, ...).
  double metric = 0.0;
  /// Names of the sources the model was trained over.
  std::vector<std::string> training_sources;
  /// Execution strategy that produced it ("factorize"/"materialize"/...).
  std::string strategy;
};

/// The catalog. Thread-safe per the reader/writer rules above; holding the
/// lock makes it non-copyable (nothing copies catalogs — handles are the
/// copyable currency).
class Catalog {
 public:
  /// Registers a source; the name must be unique (`kAlreadyExists` otherwise).
  Status RegisterSource(SourceEntry entry);
  Result<const SourceEntry*> GetSource(const std::string& name) const;
  bool HasSource(const std::string& name) const;
  std::vector<std::string> SourceNames() const;

  /// Registers a completed integration under `entry.name`; the name must be
  /// non-empty and unique (`kAlreadyExists` otherwise).
  Status RegisterIntegration(IntegrationHandle entry);
  Result<const IntegrationHandle*> GetIntegration(const std::string& name) const;
  bool HasIntegration(const std::string& name) const;
  std::vector<std::string> IntegrationNames() const;

  /// Stores the schema-matching output for a source pair (order-sensitive).
  void StoreColumnMatches(const std::string& left, const std::string& right,
                          std::vector<integration::ColumnMatch> matches);
  Result<const std::vector<integration::ColumnMatch>*> GetColumnMatches(
      const std::string& left, const std::string& right) const;

  /// Stores the entity-resolution output for a source pair.
  void StoreRowMatching(const std::string& left, const std::string& right,
                        rel::RowMatching matching);
  Result<const rel::RowMatching*> GetRowMatching(const std::string& left,
                                                 const std::string& right) const;

  /// Registers a trained model; the name must be unique (`kAlreadyExists`
  /// otherwise).
  Status RegisterModel(ModelEntry entry);
  Result<const ModelEntry*> GetModel(const std::string& name) const;
  std::vector<std::string> ModelNames() const;

 private:
  using PairKey = std::pair<std::string, std::string>;

  /// Guards the maps below (shared: lookups; exclusive: registration).
  mutable common::SharedMutex mu_;
  std::map<std::string, SourceEntry> sources_ GUARDED_BY(mu_);
  std::map<std::string, IntegrationHandle> integrations_ GUARDED_BY(mu_);
  std::map<PairKey, std::vector<integration::ColumnMatch>> column_matches_
      GUARDED_BY(mu_);
  std::map<PairKey, rel::RowMatching> row_matchings_ GUARDED_BY(mu_);
  std::map<std::string, ModelEntry> models_ GUARDED_BY(mu_);
};

}  // namespace core
}  // namespace amalur
