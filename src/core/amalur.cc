#include "core/amalur.h"

#include <set>

#include "common/string_util.h"

namespace amalur {
namespace core {

namespace {

bool IsNumeric(const rel::Column& column) {
  return column.type() != rel::DataType::kString;
}

bool AllValuesDistinct(const rel::Column& column) {
  std::set<std::string> seen;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.IsNull(i)) continue;
    if (!seen.insert(column.KeyString(i)).second) return false;
  }
  return true;
}

/// Identifier detection: a matched numeric pair is a surrogate key (join
/// evidence, not a feature) when its name looks like an id and its values
/// are unique in at least one source (the primary-key side; the foreign-key
/// side repeats under join fan-out). Keys as features poison downstream
/// models; this is standard feature-selection hygiene in DI-for-ML
/// pipelines.
bool IsIdLikePair(const rel::Column& left, const rel::Column& right) {
  static const std::set<std::string> kIdNames{"id",  "key", "k",    "pk",
                                              "uid", "nr",  "rowid"};
  const std::string name = CanonicalizeIdentifier(left.name());
  const bool id_name =
      kIdNames.count(name) > 0 ||
      (name.size() > 2 && name.substr(name.size() - 2) == "id");
  return id_name && (AllValuesDistinct(left) || AllValuesDistinct(right));
}

}  // namespace

Result<IntegrationHandle> Amalur::Integrate(const std::string& base_name,
                                            const std::string& other_name,
                                            rel::JoinKind kind) {
  AMALUR_ASSIGN_OR_RETURN(const SourceEntry* base_entry,
                          catalog_.GetSource(base_name));
  AMALUR_ASSIGN_OR_RETURN(const SourceEntry* other_entry,
                          catalog_.GetSource(other_name));
  const rel::Table& base = base_entry->table;
  const rel::Table& other = other_entry->table;

  IntegrationHandle handle;
  handle.base_name = base_name;
  handle.other_name = other_name;
  handle.privacy_constrained =
      base_entry->privacy_sensitive || other_entry->privacy_sensitive;

  // ---- 1. Schema matching (cached in the catalog).
  handle.column_matches = integration::MatchSchemas(base, other, options_.matcher);
  catalog_.StoreColumnMatches(base_name, other_name, handle.column_matches);
  if (kind != rel::JoinKind::kUnion && handle.column_matches.empty()) {
    return Status::FailedPrecondition(
        "no column matches between '", base_name, "' and '", other_name,
        "'; a join scenario needs shared columns");
  }

  // ---- 2. Target-schema synthesis. Matched numeric columns merge into one
  // target column named after the base column; private numeric columns carry
  // over; string columns act as join evidence only (the running example's
  // `n`). Name collisions between private columns get a suffix.
  std::vector<int64_t> base_match_of(base.NumColumns(), -1);
  std::vector<int64_t> other_match_of(other.NumColumns(), -1);
  for (size_t i = 0; i < handle.column_matches.size(); ++i) {
    base_match_of[handle.column_matches[i].left_column] =
        static_cast<int64_t>(i);
    other_match_of[handle.column_matches[i].right_column] =
        static_cast<int64_t>(i);
  }

  std::vector<rel::Field> target_fields;
  std::set<std::string> used_names;
  std::vector<integration::ColumnCorrespondence> base_corr;
  std::vector<integration::ColumnCorrespondence> other_corr;
  auto claim = [&used_names](const std::string& name) {
    std::string out = name;
    int suffix = 2;
    while (used_names.count(out) > 0) out = name + "_" + std::to_string(suffix++);
    used_names.insert(out);
    return out;
  };

  std::vector<uint8_t> join_only_match(handle.column_matches.size(), 0);
  for (size_t j = 0; j < base.NumColumns(); ++j) {
    const rel::Column& column = base.column(j);
    if (!IsNumeric(column)) continue;
    if (base_match_of[j] >= 0) {
      const auto& match =
          handle.column_matches[static_cast<size_t>(base_match_of[j])];
      if (IsIdLikePair(column, other.column(match.right_column))) {
        // Surrogate key: join evidence only.
        join_only_match[static_cast<size_t>(base_match_of[j])] = 1;
        continue;
      }
    }
    const std::string target_name = claim(column.name());
    target_fields.push_back({target_name, column.type(), true});
    base_corr.push_back({column.name(), target_name});
    if (base_match_of[j] >= 0) {
      const auto& match =
          handle.column_matches[static_cast<size_t>(base_match_of[j])];
      other_corr.push_back({other.column(match.right_column).name(),
                            target_name});
    }
  }
  for (size_t j = 0; j < other.NumColumns(); ++j) {
    const rel::Column& column = other.column(j);
    if (!IsNumeric(column) || other_match_of[j] >= 0) continue;
    const std::string target_name = claim(column.name());
    target_fields.push_back({target_name, column.type(), true});
    other_corr.push_back({column.name(), target_name});
  }
  if (target_fields.empty()) {
    return Status::FailedPrecondition("no numeric columns to integrate");
  }

  // Matched string columns and surrogate keys become explicit source
  // matches (join variables outside the target schema).
  std::vector<integration::SourceColumnMatch> source_matches;
  for (size_t i = 0; i < handle.column_matches.size(); ++i) {
    const integration::ColumnMatch& match = handle.column_matches[i];
    if (!IsNumeric(base.column(match.left_column)) || join_only_match[i]) {
      source_matches.push_back({0, base.column(match.left_column).name(), 1,
                                other.column(match.right_column).name()});
    }
  }

  AMALUR_ASSIGN_OR_RETURN(
      handle.mapping,
      integration::SchemaMapping::Create(
          kind,
          {integration::SchemaMapping::SourceSpec{base_name, base.schema(),
                                                  std::move(base_corr)},
           integration::SchemaMapping::SourceSpec{other_name, other.schema(),
                                                  std::move(other_corr)}},
          rel::Schema(std::move(target_fields)), std::move(source_matches)));

  // ---- 3. Row matching. When the match set contains a surrogate key,
  // exact key matching applies (and naturally expresses join fan-out, which
  // 1:1 entity resolution cannot); otherwise fall back to fuzzy entity
  // resolution over the matched columns.
  if (kind != rel::JoinKind::kUnion) {
    std::vector<std::string> base_keys;
    std::vector<std::string> other_keys;
    for (size_t i = 0; i < handle.column_matches.size(); ++i) {
      const integration::ColumnMatch& match = handle.column_matches[i];
      if (join_only_match[i] && IsNumeric(base.column(match.left_column))) {
        base_keys.push_back(base.column(match.left_column).name());
        other_keys.push_back(other.column(match.right_column).name());
      }
    }
    if (!base_keys.empty()) {
      AMALUR_ASSIGN_OR_RETURN(
          handle.matching,
          rel::MatchRowsOnKeys(base, other, base_keys, other_keys));
    } else {
      AMALUR_ASSIGN_OR_RETURN(
          handle.matching,
          integration::ResolveEntities(base, other, handle.column_matches,
                                       options_.resolver));
    }
    catalog_.StoreRowMatching(base_name, other_name, handle.matching);
  }

  // ---- 4. The three metadata matrices.
  AMALUR_ASSIGN_OR_RETURN(
      handle.metadata,
      metadata::DiMetadata::Derive(handle.mapping, {&base, &other},
                                   handle.matching));
  return handle;
}

Plan Amalur::PlanFor(const IntegrationHandle& integration) const {
  return Optimizer(options_.cost)
      .Choose(integration.metadata, integration.privacy_constrained);
}

Result<TrainOutcome> Amalur::Train(const IntegrationHandle& integration,
                                   const TrainRequest& request,
                                   const std::string& model_name) {
  const Plan plan = PlanFor(integration);
  Executor executor;
  AMALUR_ASSIGN_OR_RETURN(TrainOutcome outcome,
                          executor.Run(integration.metadata, plan, request));
  if (!model_name.empty()) {
    ModelEntry entry;
    entry.name = model_name;
    entry.task = TrainingTaskToString(request.task);
    entry.hyperparameters = {
        {"iterations", static_cast<double>(request.gd.iterations)},
        {"learning_rate", request.gd.learning_rate},
        {"l2", request.gd.l2}};
    entry.metric =
        outcome.loss_history.empty() ? 0.0 : outcome.loss_history.back();
    entry.training_sources = {integration.base_name, integration.other_name};
    entry.strategy = ExecutionStrategyToString(outcome.strategy_used);
    AMALUR_RETURN_NOT_OK(catalog_.RegisterModel(std::move(entry)));
  }
  return outcome;
}

}  // namespace core
}  // namespace amalur
