#include "core/amalur.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/status.h"
#include "common/string_util.h"
#include "factorized/factorized_table.h"
#include "ml/linear_models.h"
#include "ml/metrics.h"
#include "ml/training_matrix.h"

namespace amalur {
namespace core {

namespace {

bool IsNumeric(const rel::Column& column) {
  return column.type() != rel::DataType::kString;
}

bool AllValuesDistinct(const rel::Column& column) {
  std::set<std::string> seen;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.IsNull(i)) continue;
    if (!seen.insert(column.KeyString(i)).second) return false;
  }
  return true;
}

/// Identifier detection: a matched numeric pair is a surrogate key (join
/// evidence, not a feature) when its name looks like an id and its values
/// are unique in at least one source (the primary-key side; the foreign-key
/// side repeats under join fan-out). Keys as features poison downstream
/// models; this is standard feature-selection hygiene in DI-for-ML
/// pipelines.
bool IsIdLikePair(const rel::Column& left, const rel::Column& right) {
  static const std::set<std::string> kIdNames{"id",  "key", "k",    "pk",
                                              "uid", "nr",  "rowid"};
  const std::string name = CanonicalizeIdentifier(left.name());
  const bool id_name =
      kIdNames.count(name) > 0 ||
      (name.size() > 2 && name.substr(name.size() - 2) == "id");
  return id_name && (AllValuesDistinct(left) || AllValuesDistinct(right));
}

/// Claims a unique target-column name (collisions get a numeric suffix).
class NameClaimer {
 public:
  std::string Claim(const std::string& name) {
    std::string out = name;
    int suffix = 2;
    while (used_.count(out) > 0) out = name + "_" + std::to_string(suffix++);
    used_.insert(out);
    return out;
  }

 private:
  std::set<std::string> used_;
};

/// A spec reduced to canonical form plus its validated graph plan.
struct NormalizedSpec {
  /// Sources in topological order, edges filled, relationships per edge.
  IntegrationSpec spec;
  IntegrationGraphPlan plan;
};

/// Normalizes a spec into its edge-list form and plans the graph. The flat
/// `sources`/`relationships` form is validated as before (star base rotated
/// to position 0, a single relationship broadcast over all edges, stars
/// restricted to left joins) and then lowered into edges off the base; an
/// explicit edge list goes straight to the graph planner, which enforces
/// connectivity, acyclicity and the one-fact-root/union placement rules
/// with precise error messages.
Result<NormalizedSpec> NormalizeSpec(const IntegrationSpec& spec) {
  NormalizedSpec out;
  if (!spec.edges.empty()) {
    if (!spec.star_base.empty()) {
      return Status::InvalidArgument(
          "star_base applies to the flat sources/relationships form only; "
          "an edge list already fixes the fact root");
    }
    AMALUR_ASSIGN_OR_RETURN(out.plan,
                            PlanIntegrationGraph(spec.edges, spec.sources));
  } else {
    IntegrationSpec flat = spec;
    if (flat.sources.size() < 2) {
      return Status::InvalidArgument("an integration needs >= 2 sources, got ",
                                     flat.sources.size());
    }
    std::set<std::string> unique(flat.sources.begin(), flat.sources.end());
    if (unique.size() != flat.sources.size()) {
      return Status::InvalidArgument("duplicate source in integration spec");
    }
    if (!flat.star_base.empty()) {
      auto it =
          std::find(flat.sources.begin(), flat.sources.end(), flat.star_base);
      if (it == flat.sources.end()) {
        return Status::InvalidArgument("star base '", flat.star_base,
                                       "' is not among the spec's sources");
      }
      std::rotate(flat.sources.begin(), it, it + 1);
    }
    const size_t edges = flat.sources.size() - 1;
    if (flat.relationships.size() == 1) {
      flat.relationships.assign(edges, flat.relationships[0]);
    } else if (flat.relationships.size() != edges) {
      return Status::InvalidArgument("expected one relationship per edge (",
                                     edges, " edges) or a single broadcast "
                                     "relationship, got ",
                                     flat.relationships.size());
    }
    if (flat.sources.size() > 2) {
      for (rel::JoinKind kind : flat.relationships) {
        if (kind != rel::JoinKind::kLeftJoin) {
          return Status::InvalidArgument(
              "star integrations (>= 3 sources) require the left-join "
              "relationship on every edge, got ", rel::JoinKindToString(kind),
              "; use the edge-list spec form for mixed-relationship graphs");
        }
      }
    }
    std::vector<IntegrationEdge> lowered;
    for (size_t e = 0; e < edges; ++e) {
      lowered.push_back(
          {flat.sources[0], flat.sources[e + 1], flat.relationships[e]});
    }
    AMALUR_ASSIGN_OR_RETURN(out.plan,
                            PlanIntegrationGraph(lowered, flat.sources));
  }
  out.spec = spec;
  out.spec.star_base.clear();
  out.spec.sources = out.plan.sources;
  out.spec.edges = out.plan.edges;
  out.spec.relationships.clear();
  for (const IntegrationEdge& edge : out.plan.edges) {
    out.spec.relationships.push_back(edge.kind);
  }
  return out;
}

}  // namespace

Result<IntegrationHandle> Amalur::Integrate(const std::string& base_name,
                                            const std::string& other_name,
                                            rel::JoinKind kind) {
  IntegrationSpec spec;
  spec.sources = {base_name, other_name};
  spec.relationships = {kind};
  return Integrate(spec);
}

Result<IntegrationHandle> Amalur::Integrate(const IntegrationSpec& spec) {
  AMALUR_ASSIGN_OR_RETURN(NormalizedSpec normalized, NormalizeSpec(spec));
  Result<IntegrationHandle> handle = [&]() -> Result<IntegrationHandle> {
    switch (normalized.plan.shape) {
      case metadata::IntegrationShape::kPairwise:
        return IntegratePair(normalized.spec);
      case metadata::IntegrationShape::kStar:
        // The unchanged fast path: depth-1 left joins off one base. An
        // inner edge keeps the star *shape* but needs the graph derivation
        // — the star path never reads edge kinds and would silently drop
        // the inner join's row restriction.
        for (const IntegrationEdge& edge : normalized.plan.edges) {
          if (edge.kind == rel::JoinKind::kInnerJoin) {
            return IntegrateGraph(normalized.spec, normalized.plan);
          }
        }
        return IntegrateStar(normalized.spec);
      case metadata::IntegrationShape::kSnowflake:
      case metadata::IntegrationShape::kConformedSnowflake:
      case metadata::IntegrationShape::kUnionOfStars:
        return IntegrateGraph(normalized.spec, normalized.plan);
    }
    return Status::Internal("unreachable integration shape");
  }();
  if (handle.ok()) {
    handle->edges = normalized.plan.edges;
    handle->shape = normalized.plan.shape;
    if (!normalized.spec.name.empty()) {
      AMALUR_RETURN_NOT_OK(catalog_.RegisterIntegration(*handle));
    }
  }
  return handle;
}

Result<IntegrationHandle> Amalur::IntegratePair(const IntegrationSpec& spec) {
  const std::string& base_name = spec.sources[0];
  const std::string& other_name = spec.sources[1];
  const rel::JoinKind kind = spec.relationships[0];
  AMALUR_ASSIGN_OR_RETURN(const SourceEntry* base_entry,
                          catalog_.GetSource(base_name));
  AMALUR_ASSIGN_OR_RETURN(const SourceEntry* other_entry,
                          catalog_.GetSource(other_name));
  const rel::Table& base = base_entry->table;
  const rel::Table& other = other_entry->table;

  IntegrationHandle handle;
  handle.name = spec.name;
  handle.source_names = {base_name, other_name};
  handle.privacy_constrained =
      base_entry->privacy_sensitive || other_entry->privacy_sensitive;

  // ---- 1. Schema matching (cached in the catalog).
  std::vector<integration::ColumnMatch> column_matches =
      integration::MatchSchemas(base, other, options_.matcher);
  catalog_.StoreColumnMatches(base_name, other_name, column_matches);
  if (kind != rel::JoinKind::kUnion && column_matches.empty()) {
    return Status::FailedPrecondition(
        "no column matches between '", base_name, "' and '", other_name,
        "'; a join scenario needs shared columns");
  }

  // ---- 2. Target-schema synthesis. Matched numeric columns merge into one
  // target column named after the base column; private numeric columns carry
  // over; string columns act as join evidence only (the running example's
  // `n`). Name collisions between private columns get a suffix.
  std::vector<int64_t> base_match_of(base.NumColumns(), -1);
  std::vector<int64_t> other_match_of(other.NumColumns(), -1);
  for (size_t i = 0; i < column_matches.size(); ++i) {
    base_match_of[column_matches[i].left_column] = static_cast<int64_t>(i);
    other_match_of[column_matches[i].right_column] = static_cast<int64_t>(i);
  }

  std::vector<rel::Field> target_fields;
  NameClaimer names;
  std::vector<integration::ColumnCorrespondence> base_corr;
  std::vector<integration::ColumnCorrespondence> other_corr;

  std::vector<uint8_t> join_only_match(column_matches.size(), 0);
  for (size_t j = 0; j < base.NumColumns(); ++j) {
    const rel::Column& column = base.column(j);
    if (!IsNumeric(column)) continue;
    if (base_match_of[j] >= 0) {
      const auto& match =
          column_matches[static_cast<size_t>(base_match_of[j])];
      if (IsIdLikePair(column, other.column(match.right_column))) {
        // Surrogate key: join evidence only.
        join_only_match[static_cast<size_t>(base_match_of[j])] = 1;
        continue;
      }
    }
    const std::string target_name = names.Claim(column.name());
    target_fields.push_back({target_name, column.type(), true});
    base_corr.push_back({column.name(), target_name});
    if (base_match_of[j] >= 0) {
      const auto& match =
          column_matches[static_cast<size_t>(base_match_of[j])];
      other_corr.push_back({other.column(match.right_column).name(),
                            target_name});
    }
  }
  for (size_t j = 0; j < other.NumColumns(); ++j) {
    const rel::Column& column = other.column(j);
    if (!IsNumeric(column) || other_match_of[j] >= 0) continue;
    const std::string target_name = names.Claim(column.name());
    target_fields.push_back({target_name, column.type(), true});
    other_corr.push_back({column.name(), target_name});
  }
  if (target_fields.empty()) {
    return Status::FailedPrecondition("no numeric columns to integrate");
  }

  // Matched string columns and surrogate keys become explicit source
  // matches (join variables outside the target schema).
  std::vector<integration::SourceColumnMatch> source_matches;
  for (size_t i = 0; i < column_matches.size(); ++i) {
    const integration::ColumnMatch& match = column_matches[i];
    if (!IsNumeric(base.column(match.left_column)) || join_only_match[i]) {
      source_matches.push_back({0, base.column(match.left_column).name(), 1,
                                other.column(match.right_column).name()});
    }
  }

  AMALUR_ASSIGN_OR_RETURN(
      handle.mapping,
      integration::SchemaMapping::Create(
          kind,
          {integration::SchemaMapping::SourceSpec{base_name, base.schema(),
                                                  std::move(base_corr)},
           integration::SchemaMapping::SourceSpec{other_name, other.schema(),
                                                  std::move(other_corr)}},
          rel::Schema(std::move(target_fields)), std::move(source_matches)));

  // ---- 3. Row matching. When the match set contains a surrogate key,
  // exact key matching applies (and naturally expresses join fan-out, which
  // 1:1 entity resolution cannot); otherwise fall back to fuzzy entity
  // resolution over the matched columns.
  rel::RowMatching matching;
  if (kind != rel::JoinKind::kUnion) {
    std::vector<std::string> base_keys;
    std::vector<std::string> other_keys;
    for (size_t i = 0; i < column_matches.size(); ++i) {
      const integration::ColumnMatch& match = column_matches[i];
      if (join_only_match[i] && IsNumeric(base.column(match.left_column))) {
        base_keys.push_back(base.column(match.left_column).name());
        other_keys.push_back(other.column(match.right_column).name());
      }
    }
    if (!base_keys.empty()) {
      AMALUR_ASSIGN_OR_RETURN(
          matching, rel::MatchRowsOnKeys(base, other, base_keys, other_keys));
    } else {
      AMALUR_ASSIGN_OR_RETURN(
          matching, integration::ResolveEntities(base, other, column_matches,
                                                 options_.resolver));
    }
    catalog_.StoreRowMatching(base_name, other_name, matching);
  }
  handle.edge_matches.push_back(std::move(column_matches));
  handle.matchings.push_back(std::move(matching));

  // ---- 4. The three metadata matrices.
  AMALUR_ASSIGN_OR_RETURN(
      handle.metadata,
      metadata::DiMetadata::Derive(handle.mapping, {&base, &other},
                                   handle.matchings[0]));
  return handle;
}

Result<IntegrationHandle> Amalur::IntegrateStar(const IntegrationSpec& spec) {
  const size_t n_sources = spec.sources.size();
  std::vector<const SourceEntry*> entries(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    AMALUR_ASSIGN_OR_RETURN(entries[k], catalog_.GetSource(spec.sources[k]));
  }
  const rel::Table& base = entries[0]->table;

  IntegrationHandle handle;
  handle.name = spec.name;
  handle.source_names = spec.sources;
  for (const SourceEntry* entry : entries) {
    handle.privacy_constrained |= entry->privacy_sensitive;
  }

  // ---- 1. Per-edge schema matching and join-key discovery. An edge's
  // matches split into surrogate keys / string join evidence (row-matching
  // material) and merged feature columns.
  struct EdgePlan {
    std::vector<std::string> base_keys;   // numeric surrogate keys
    std::vector<std::string> dim_keys;
    /// dim column index -> matched base column index (merged features).
    std::map<size_t, size_t> merged;
    std::vector<integration::SourceColumnMatch> source_matches;
  };
  std::vector<EdgePlan> edges(n_sources - 1);
  std::set<size_t> base_key_columns;  // excluded from the target schema
  for (size_t e = 0; e + 1 < n_sources; ++e) {
    const rel::Table& dim = entries[e + 1]->table;
    std::vector<integration::ColumnMatch> matches =
        integration::MatchSchemas(base, dim, options_.matcher);
    catalog_.StoreColumnMatches(spec.sources[0], spec.sources[e + 1], matches);
    if (matches.empty()) {
      return Status::FailedPrecondition(
          "no column matches between base '", spec.sources[0],
          "' and dimension '", spec.sources[e + 1],
          "'; a star edge needs a shared key column");
    }
    for (const integration::ColumnMatch& match : matches) {
      const rel::Column& left = base.column(match.left_column);
      const rel::Column& right = dim.column(match.right_column);
      if (!IsNumeric(left)) {
        edges[e].source_matches.push_back(
            {0, left.name(), e + 1, right.name()});
      } else if (IsIdLikePair(left, right)) {
        edges[e].base_keys.push_back(left.name());
        edges[e].dim_keys.push_back(right.name());
        base_key_columns.insert(match.left_column);
        edges[e].source_matches.push_back(
            {0, left.name(), e + 1, right.name()});
      } else {
        edges[e].merged[match.right_column] = match.left_column;
      }
    }
    handle.edge_matches.push_back(std::move(matches));
  }

  // ---- 2. Target-schema synthesis: the base's non-key numeric columns
  // first, then each dimension's unmatched numeric features in source order.
  // Dimension columns matched to a base feature merge into its target
  // column; keys of ANY edge never become features.
  NameClaimer names;
  std::vector<rel::Field> target_fields;
  std::vector<std::vector<integration::ColumnCorrespondence>> corr(n_sources);
  std::vector<std::string> base_target_names(base.NumColumns());
  for (size_t j = 0; j < base.NumColumns(); ++j) {
    const rel::Column& column = base.column(j);
    if (!IsNumeric(column) || base_key_columns.count(j) > 0) continue;
    const std::string target_name = names.Claim(column.name());
    target_fields.push_back({target_name, column.type(), true});
    corr[0].push_back({column.name(), target_name});
    base_target_names[j] = target_name;
  }
  for (size_t e = 0; e + 1 < n_sources; ++e) {
    const rel::Table& dim = entries[e + 1]->table;
    std::set<std::string> edge_dim_keys(edges[e].dim_keys.begin(),
                                        edges[e].dim_keys.end());
    for (size_t j = 0; j < dim.NumColumns(); ++j) {
      const rel::Column& column = dim.column(j);
      if (!IsNumeric(column) || edge_dim_keys.count(column.name()) > 0) {
        continue;
      }
      auto merged = edges[e].merged.find(j);
      if (merged != edges[e].merged.end()) {
        // Overlapping feature: reuse the base column's target name. When the
        // matched base column is another edge's join key (no target name),
        // fall through and keep the dimension column as a feature of its
        // own rather than silently dropping it.
        const std::string& merged_target = base_target_names[merged->second];
        if (!merged_target.empty()) {
          corr[e + 1].push_back({column.name(), merged_target});
          continue;
        }
      }
      const std::string target_name = names.Claim(column.name());
      target_fields.push_back({target_name, column.type(), true});
      corr[e + 1].push_back({column.name(), target_name});
    }
  }
  if (target_fields.empty()) {
    return Status::FailedPrecondition("no numeric columns to integrate");
  }

  std::vector<integration::SchemaMapping::SourceSpec> source_specs;
  std::vector<integration::SourceColumnMatch> source_matches;
  for (size_t k = 0; k < n_sources; ++k) {
    source_specs.push_back({spec.sources[k], entries[k]->table.schema(),
                            std::move(corr[k])});
    if (k > 0) {
      source_matches.insert(source_matches.end(),
                            edges[k - 1].source_matches.begin(),
                            edges[k - 1].source_matches.end());
    }
  }
  AMALUR_ASSIGN_OR_RETURN(
      handle.mapping,
      integration::SchemaMapping::Create(
          rel::JoinKind::kLeftJoin, std::move(source_specs),
          rel::Schema(std::move(target_fields)), std::move(source_matches)));

  // ---- 3. Row matching per edge: exact keys when a surrogate key was
  // discovered, fuzzy entity resolution otherwise. Star derivation requires
  // each matching to be functional (one dimension row per base row); a
  // duplicate-keyed dimension surfaces as kFailedPrecondition below.
  for (size_t e = 0; e + 1 < n_sources; ++e) {
    const rel::Table& dim = entries[e + 1]->table;
    rel::RowMatching matching;
    if (!edges[e].base_keys.empty()) {
      AMALUR_ASSIGN_OR_RETURN(
          matching, rel::MatchRowsOnKeys(base, dim, edges[e].base_keys,
                                         edges[e].dim_keys));
    } else {
      AMALUR_ASSIGN_OR_RETURN(
          matching,
          integration::ResolveEntities(base, dim, handle.edge_matches[e],
                                       options_.resolver));
    }
    catalog_.StoreRowMatching(spec.sources[0], spec.sources[e + 1], matching);
    handle.matchings.push_back(std::move(matching));
  }

  // ---- 4. One indicator/mapping/redundancy triple per silo.
  std::vector<const rel::Table*> tables;
  tables.reserve(n_sources);
  for (const SourceEntry* entry : entries) tables.push_back(&entry->table);
  AMALUR_ASSIGN_OR_RETURN(
      handle.metadata,
      metadata::DiMetadata::DeriveStar(handle.mapping, tables,
                                       handle.matchings));
  return handle;
}

Result<IntegrationHandle> Amalur::IntegrateGraph(
    const IntegrationSpec& spec, const IntegrationGraphPlan& plan) {
  const size_t n_sources = plan.sources.size();
  std::vector<const SourceEntry*> entries(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    AMALUR_ASSIGN_OR_RETURN(entries[k], catalog_.GetSource(plan.sources[k]));
  }

  IntegrationHandle handle;
  handle.name = spec.name;
  handle.source_names = plan.sources;
  handle.edges = plan.edges;
  handle.shape = plan.shape;
  for (const SourceEntry* entry : entries) {
    handle.privacy_constrained |= entry->privacy_sensitive;
  }

  // ---- 1. Per-edge schema matching and key discovery, walking the graph
  // in topological order. Join edges (left or inner) need a key (or ER
  // evidence) between parent and child; union edges need overlapping
  // columns to merge. A conformed dimension is matched against every
  // parent. A node's key columns — from *any* incident edge — never become
  // features.
  struct EdgePlan {
    std::vector<std::string> parent_keys;  // numeric surrogate keys
    std::vector<std::string> child_keys;
    /// child column index -> matched parent column index (merged features).
    std::map<size_t, size_t> merged;
    std::vector<integration::SourceColumnMatch> source_matches;
  };
  const size_t n_edges = plan.metadata_edges.size();
  std::vector<EdgePlan> edge_plans(n_edges);
  std::vector<std::set<std::string>> key_columns(n_sources);
  for (size_t e = 0; e < n_edges; ++e) {
    const metadata::MetadataEdge& edge = plan.metadata_edges[e];
    const rel::Table& parent = entries[edge.parent]->table;
    const rel::Table& child = entries[edge.child]->table;
    std::vector<integration::ColumnMatch> matches =
        integration::MatchSchemas(parent, child, options_.matcher);
    catalog_.StoreColumnMatches(plan.sources[edge.parent],
                                plan.sources[edge.child], matches);
    if (matches.empty()) {
      if (edge.kind == rel::JoinKind::kUnion) {
        return Status::FailedPrecondition(
            "no column matches between fact shards '",
            plan.sources[edge.parent], "' and '", plan.sources[edge.child],
            "'; a union edge needs overlapping columns");
      }
      return Status::FailedPrecondition(
          "no column matches between '", plan.sources[edge.parent],
          "' and '", plan.sources[edge.child],
          "'; a join edge needs a shared key column");
    }
    for (const integration::ColumnMatch& match : matches) {
      const rel::Column& left = parent.column(match.left_column);
      const rel::Column& right = child.column(match.right_column);
      if (!IsNumeric(left)) {
        edge_plans[e].source_matches.push_back(
            {edge.parent, left.name(), edge.child, right.name()});
      } else if (IsIdLikePair(left, right)) {
        // Surrogate keys: join evidence on join edges; on union edges they
        // are still excluded from the feature space (keys poison models)
        // and recorded as inter-shard correspondence.
        key_columns[edge.parent].insert(left.name());
        key_columns[edge.child].insert(right.name());
        edge_plans[e].source_matches.push_back(
            {edge.parent, left.name(), edge.child, right.name()});
        if (edge.kind != rel::JoinKind::kUnion) {
          edge_plans[e].parent_keys.push_back(left.name());
          edge_plans[e].child_keys.push_back(right.name());
        }
      } else {
        edge_plans[e].merged[match.right_column] = match.left_column;
      }
    }
    handle.edge_matches.push_back(std::move(matches));
  }

  // ---- 2. Target-schema synthesis in topological order: each node's
  // non-key numeric columns either merge into the target column of the
  // parent column they matched (overlapping features across a join edge;
  // shared shard columns across a union edge) or claim a fresh target
  // column. A conformed dimension is visited once — its columns land in the
  // target exactly once however many parents reference it; merge evidence
  // is taken from any of its parent edges, first match in declaration
  // order. A column matched to a parent *key* (which has no target column)
  // stays a feature of its own rather than silently dropping.
  std::vector<std::vector<size_t>> parent_edges_of(n_sources);
  for (size_t e = 0; e < n_edges; ++e) {
    parent_edges_of[plan.metadata_edges[e].child].push_back(e);
  }
  NameClaimer names;
  std::vector<rel::Field> target_fields;
  std::vector<std::vector<integration::ColumnCorrespondence>> corr(n_sources);
  std::vector<std::vector<std::string>> target_name_of(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    const rel::Table& table = entries[k]->table;
    target_name_of[k].assign(table.NumColumns(), "");
    for (size_t j = 0; j < table.NumColumns(); ++j) {
      const rel::Column& column = table.column(j);
      if (!IsNumeric(column) || key_columns[k].count(column.name()) > 0) {
        continue;
      }
      bool merged_into_parent = false;
      for (size_t pe : parent_edges_of[k]) {
        const EdgePlan& eplan = edge_plans[pe];
        auto merged = eplan.merged.find(j);
        if (merged == eplan.merged.end()) continue;
        const size_t parent = plan.metadata_edges[pe].parent;
        const std::string& parent_target =
            target_name_of[parent][merged->second];
        if (!parent_target.empty()) {
          corr[k].push_back({column.name(), parent_target});
          target_name_of[k][j] = parent_target;
          merged_into_parent = true;
          break;
        }
      }
      if (merged_into_parent) continue;
      const std::string target_name = names.Claim(column.name());
      target_fields.push_back({target_name, column.type(), true});
      corr[k].push_back({column.name(), target_name});
      target_name_of[k][j] = target_name;
    }
  }
  if (target_fields.empty()) {
    return Status::FailedPrecondition("no numeric columns to integrate");
  }

  std::vector<integration::SchemaMapping::SourceSpec> source_specs;
  std::vector<integration::SourceColumnMatch> source_matches;
  for (size_t k = 0; k < n_sources; ++k) {
    source_specs.push_back({plan.sources[k], entries[k]->table.schema(),
                            std::move(corr[k])});
  }
  for (const EdgePlan& eplan : edge_plans) {
    source_matches.insert(source_matches.end(), eplan.source_matches.begin(),
                          eplan.source_matches.end());
  }
  const rel::JoinKind mapping_kind =
      plan.shape == metadata::IntegrationShape::kUnionOfStars
          ? rel::JoinKind::kUnion
          : rel::JoinKind::kLeftJoin;
  AMALUR_ASSIGN_OR_RETURN(
      handle.mapping,
      integration::SchemaMapping::Create(
          mapping_kind, std::move(source_specs),
          rel::Schema(std::move(target_fields)), std::move(source_matches)));

  // ---- 3. Row matching per join edge (exact keys when a surrogate key was
  // discovered, fuzzy entity resolution otherwise); union edges match no
  // rows and keep an empty placeholder so matchings stay parallel to edges.
  for (size_t e = 0; e < n_edges; ++e) {
    const metadata::MetadataEdge& edge = plan.metadata_edges[e];
    rel::RowMatching matching;
    if (edge.kind != rel::JoinKind::kUnion) {
      const rel::Table& parent = entries[edge.parent]->table;
      const rel::Table& child = entries[edge.child]->table;
      if (!edge_plans[e].parent_keys.empty()) {
        AMALUR_ASSIGN_OR_RETURN(
            matching,
            rel::MatchRowsOnKeys(parent, child, edge_plans[e].parent_keys,
                                 edge_plans[e].child_keys));
      } else {
        AMALUR_ASSIGN_OR_RETURN(
            matching,
            integration::ResolveEntities(parent, child, handle.edge_matches[e],
                                         options_.resolver));
      }
      catalog_.StoreRowMatching(plan.sources[edge.parent],
                                plan.sources[edge.child], matching);
    }
    handle.matchings.push_back(std::move(matching));
  }

  // ---- 4. Metadata for the whole graph: composed fan-out indicators along
  // snowflake chains, stacked shard blocks for union-of-stars.
  std::vector<const rel::Table*> tables;
  tables.reserve(n_sources);
  for (const SourceEntry* entry : entries) tables.push_back(&entry->table);
  AMALUR_ASSIGN_OR_RETURN(
      handle.metadata,
      metadata::DiMetadata::DeriveGraph(handle.mapping, tables,
                                        plan.metadata_edges,
                                        handle.matchings));
  return handle;
}

Plan Amalur::Explain(const IntegrationHandle& integration) const {
  return Optimizer(options_.cost)
      .Choose(integration.metadata, integration.privacy_constrained);
}

Result<ModelHandle> Amalur::Train(const IntegrationHandle& integration,
                                  const TrainRequest& request,
                                  const std::string& model_name) {
  Plan plan;
  if (!request.calibration_file.empty()) {
    // Per-request constants: the named fitted-constants file overrides the
    // facade's resolved options for this plan only (falling back to them,
    // reason included, when it cannot be loaded).
    const cost::Calibration calibration =
        cost::ResolveCalibration(options_.cost, request.calibration_file);
    plan = Optimizer(calibration)
               .Choose(integration.metadata, integration.privacy_constrained);
  } else {
    plan = Explain(integration);
  }
  if (request.force_strategy.has_value()) {
    if (integration.privacy_constrained &&
        *request.force_strategy != ExecutionStrategy::kFederate) {
      return Status::FailedPrecondition(
          "cannot force the ", ExecutionStrategyToString(*request.force_strategy),
          " strategy: the integration is privacy-constrained and data may "
          "not leave the silos");
    }
    plan.explanation =
        std::string("forced to ") +
        ExecutionStrategyToString(*request.force_strategy) +
        " by the request (optimizer chose " +
        ExecutionStrategyToString(plan.strategy) + "); " + plan.explanation;
    plan.strategy = *request.force_strategy;
  }
  Executor executor;
  AMALUR_ASSIGN_OR_RETURN(TrainOutcome outcome,
                          executor.Run(integration.metadata, plan, request));
  plan.explanation += "; executed with " +
                      std::to_string(outcome.threads_used) +
                      (outcome.threads_used == 1 ? " thread" : " threads");
  if (outcome.strategy_used == ExecutionStrategy::kFederate) {
    // Per-run federated accounting lands in the executed plan so `Explain`
    // answers "how many silos, how many rounds, how many bytes" directly.
    plan.explanation += "; federated: " +
                        std::to_string(outcome.federated_silos) + " silos, " +
                        std::to_string(outcome.federated_rounds) +
                        " rounds, " +
                        std::to_string(outcome.bytes_transferred) +
                        " bytes transferred";
    // Reliability accounting: a run that survived faults says so — which
    // silos were lost, how many rounds ran degraded, and what the wire
    // faults cost in retransmissions and wasted bytes.
    if (!outcome.silos_dropped.empty() || outcome.rounds_degraded > 0) {
      std::string lost;
      for (const std::string& silo : outcome.silos_dropped) {
        if (!lost.empty()) lost += ", ";
        lost += silo;
      }
      plan.explanation += "; degraded: " +
                          std::to_string(outcome.rounds_degraded) +
                          " rounds without {" + lost + "}";
    }
    if (outcome.retries > 0 || outcome.bytes_wasted > 0) {
      plan.explanation += "; wire faults: " + std::to_string(outcome.retries) +
                          " retransmissions, " +
                          std::to_string(outcome.bytes_wasted) +
                          " bytes wasted";
    }
  }

  ModelHandle model;
  model.name_ = model_name;
  model.task_ = request.task;
  model.label_column_ = request.label_column;
  for (const std::string& name : integration.metadata.target_schema().Names()) {
    if (name != request.label_column) model.feature_names_.push_back(name);
  }
  model.source_names_ = integration.source_names;
  model.plan_ = plan;
  model.outcome_ = std::move(outcome);
  // In-sample serving state: factorized plans reuse the exact view training
  // ran over; other plans keep a metadata copy (the handle must outlive the
  // integration) and materialize on demand — no row-class plans are built
  // for them. The label position was validated by the executor.
  model.label_index_ =
      *integration.metadata.target_schema().IndexOf(request.label_column);
  if (model.outcome_.factorized_table != nullptr) {
    model.factorized_table_ = model.outcome_.factorized_table;
  } else {
    model.metadata_ =
        std::make_shared<const metadata::DiMetadata>(integration.metadata);
  }

  if (!model_name.empty()) {
    ModelEntry entry;
    entry.name = model_name;
    entry.task = TrainingTaskToString(request.task);
    entry.hyperparameters = {
        {"iterations", static_cast<double>(request.gd.iterations)},
        {"learning_rate", request.gd.learning_rate},
        {"l2", request.gd.l2}};
    entry.metric = model.outcome_.loss_history.empty()
                       ? 0.0
                       : model.outcome_.loss_history.back();
    entry.training_sources = integration.source_names;
    entry.strategy = ExecutionStrategyToString(model.outcome_.strategy_used);
    AMALUR_RETURN_NOT_OK(catalog_.RegisterModel(std::move(entry)));
  }
  return model;
}

namespace {

/// Resolves a training-schema column in holdout data *by name* — serving
/// must never trust positional order (a shuffled holdout table would
/// silently score features against the wrong weights). Missing or
/// non-numeric columns are the caller's data problem: `kInvalidArgument`.
Result<size_t> ResolveServingColumn(const rel::Table& data,
                                    const std::string& name,
                                    const char* role) {
  auto index = data.ColumnIndex(name);
  if (!index.ok()) {
    return Status::InvalidArgument(
        "holdout data is missing ", role, " column '", name,
        "' of the training schema; serving aligns columns by name");
  }
  if (data.column(*index).type() == rel::DataType::kString) {
    return Status::InvalidArgument(
        "holdout column '", name, "' is a string column but the training "
        "schema expects a numeric ", role);
  }
  return *index;
}

}  // namespace

Result<la::DenseMatrix> ModelHandle::Predict(const rel::Table& data) const {
  // A zero-row holdout table is well-formed input (e.g. an empty shard or a
  // filter that matched nothing): the contract is an empty 0 x 1 score
  // matrix, guaranteed here regardless of backend behavior. Schema
  // validation still applies below — a zero-row table with a *wrong* schema
  // stays kInvalidArgument.
  std::vector<size_t> indices;
  indices.reserve(feature_names_.size());
  for (const std::string& name : feature_names_) {
    AMALUR_ASSIGN_OR_RETURN(size_t index,
                            ResolveServingColumn(data, name, "feature"));
    indices.push_back(index);
  }
  AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix features, data.ToMatrix(indices));
  const ml::MaterializedMatrix matrix(std::move(features));
  if (task_ == TrainingTask::kLogisticRegression) {
    return ml::PredictLogistic(matrix, outcome_.weights);
  }
  return ml::PredictLinear(matrix, outcome_.weights);
}

la::DenseMatrix ModelHandle::PredictFactorized() const {
  // Silo pushdown: the LMM runs over the source matrices through the same
  // training-matrix view the trainer used — no rT x cT intermediate.
  const ml::FactorizedFeatures features(factorized_table_, label_index_);
  return task_ == TrainingTask::kLogisticRegression
             ? ml::PredictLogistic(features, outcome_.weights)
             : ml::PredictLinear(features, outcome_.weights);
}

la::DenseMatrix ModelHandle::PredictDense(const la::DenseMatrix& target) const {
  std::vector<size_t> feature_cols;
  for (size_t j = 0; j < target.cols(); ++j) {
    if (j != label_index_) feature_cols.push_back(j);
  }
  const ml::MaterializedMatrix features(target.SelectColumns(feature_cols));
  return task_ == TrainingTask::kLogisticRegression
             ? ml::PredictLogistic(features, outcome_.weights)
             : ml::PredictLinear(features, outcome_.weights);
}

Result<la::DenseMatrix> ModelHandle::Predict() const {
  if (factorized_table_ != nullptr) return PredictFactorized();
  if (metadata_ == nullptr) {
    return Status::FailedPrecondition(
        "this model handle carries no integration data; train it through "
        "Amalur::Train or predict over a relational table");
  }
  return PredictDense(metadata_->MaterializeTargetMatrix());
}

EvaluationReport ModelHandle::Score(const la::DenseMatrix& predictions,
                                    const la::DenseMatrix& labels) const {
  EvaluationReport report;
  report.rows = predictions.rows();
  report.mse = ml::MeanSquaredError(predictions, labels);
  if (task_ == TrainingTask::kLogisticRegression) {
    report.log_loss = ml::LogLoss(predictions, labels);
    report.accuracy = ml::BinaryAccuracy(predictions, labels);
    report.primary = report.accuracy;
  } else {
    report.primary = report.mse;
  }
  return report;
}

Result<EvaluationReport> ModelHandle::Evaluate(const rel::Table& data) const {
  if (data.NumRows() == 0) {
    // Sharp edge: the metrics all define the empty average as 0.0, so a
    // zero-row holdout would yield an ok report with mse = 0 — an all-zero
    // report that impersonates a perfect model. Fail loudly instead.
    return Status::InvalidArgument(
        "cannot evaluate over the zero-row table '", data.name(),
        "': every metric would degenerate to 0 and read as a perfect score");
  }
  AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix predictions, Predict(data));
  AMALUR_ASSIGN_OR_RETURN(size_t label_index,
                          ResolveServingColumn(data, label_column_, "label"));
  AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix labels,
                          data.ToMatrix({label_index}));
  return Score(predictions, labels);
}

Result<EvaluationReport> ModelHandle::Evaluate() const {
  if (factorized_table_ != nullptr) {
    // One cheap factorized LMM extracts the label column from the silos.
    return Score(
        PredictFactorized(),
        ml::FactorizedFeatures(factorized_table_, label_index_).Labels());
  }
  if (metadata_ == nullptr) {
    return Status::FailedPrecondition(
        "this model handle carries no integration data; train it through "
        "Amalur::Train or evaluate over a relational table");
  }
  // Materialize once; slice features and label from the same matrix.
  const la::DenseMatrix target = metadata_->MaterializeTargetMatrix();
  return Score(PredictDense(target), target.SelectColumns({label_index_}));
}

}  // namespace core
}  // namespace amalur
