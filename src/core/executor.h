#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/optimizer.h"
#include "factorized/factorized_table.h"
#include "federated/fault_injection.h"
#include "federated/hfl.h"
#include "federated/vfl.h"
#include "metadata/di_metadata.h"
#include "ml/linear_models.h"

/// \file executor.h
/// Plan execution (Figure 3's "Optimization & Execution"): compiles the
/// optimizer's plan into the concrete training run — a factorized trainer
/// over silo matrices, a materialized trainer over the exported target, or
/// a federated protocol picked by the integration's shape: vertically
/// partitioned scenarios (pairwise joins, stars, snowflakes) run the n-ary
/// vertical FLR with one party per silo, horizontally partitioned ones
/// (unions, union-of-stars) run FedAvg with one participant per fact
/// shard — and reports what actually ran.

namespace amalur {
namespace core {

/// Supported downstream tasks.
enum class TrainingTask : int8_t {
  kLinearRegression = 0,
  kLogisticRegression = 1,
};

const char* TrainingTaskToString(TrainingTask task);

/// What the user asks Amalur to train.
struct TrainRequest {
  TrainingTask task = TrainingTask::kLinearRegression;
  /// Target-schema column holding the label.
  std::string label_column = "y";
  ml::GradientDescentOptions gd;
  /// Federated wire protection (only used by federated plans). Vertical
  /// runs take it literally (plaintext vs Paillier residual exchange);
  /// horizontal runs map any non-plaintext setting to secure aggregation
  /// over additive secret shares.
  federated::VflPrivacy privacy = federated::VflPrivacy::kPlaintext;
  /// Worker threads for the training kernels. 0 keeps the runtime default
  /// (`AMALUR_NUM_THREADS`, else hardware concurrency); 1 forces serial
  /// execution. The effective count is reported in
  /// `TrainOutcome::threads_used` and the executed plan's explanation.
  size_t num_threads = 0;
  /// When set, overrides the optimizer's choice: `Amalur::Train` executes
  /// this strategy regardless of the cost estimate (the estimate is still
  /// computed and attached to the plan for `Explain`). Ablations and tests
  /// use this to pin a backend; privacy constraints are NOT overridden —
  /// forcing a data-moving strategy over a privacy-constrained integration
  /// is rejected with `kFailedPrecondition`.
  std::optional<ExecutionStrategy> force_strategy;
  /// Optional fitted-constants file (cost/calibrator.h) to plan this run
  /// with: overrides the facade's resolved constants — including a
  /// `$AMALUR_CALIBRATION_FILE` environment override — for this request
  /// only. An unreadable or malformed file falls back to the facade's
  /// constants with the reason recorded in the plan's explanation; the
  /// plan always states whether calibrated or default constants decided.
  std::string calibration_file;
  /// Reliability policy for federated plans: per-message retry/timeout
  /// budgets, the minimum quorum, and whether losing a silo fails the run
  /// or degrades it (HFL re-weights FedAvg over the survivors; VFL cannot
  /// shed a feature-owning party and always fails). Ignored by
  /// non-federated strategies.
  federated::FederatedPolicy federated_policy;
  /// Optional chaos schedule (testing/benchmarking): when set, federated
  /// traffic runs over a `FaultyMessageBus` applying the schedule's seeded
  /// drop/delay/duplicate/crash faults. Not owned; must outlive the call.
  /// Null = healthy wire.
  const federated::FaultSchedule* fault_schedule = nullptr;
};

/// The result of an executed plan.
struct TrainOutcome {
  ExecutionStrategy strategy_used = ExecutionStrategy::kMaterialize;
  /// Final weights in target-feature order. For federated runs the
  /// per-party blocks [θ_0; ...; θ_{N−1}] (vertical) or the FedAvg global
  /// model (horizontal) are re-ordered to target columns.
  la::DenseMatrix weights;
  std::vector<double> loss_history;
  /// Wall-clock of the training run (excludes metadata derivation).
  double seconds = 0.0;
  /// Bytes moved between parties (federated runs only).
  size_t bytes_transferred = 0;
  /// Federated runs only: number of participating silos (feature-holding
  /// parties for vertical runs, fact shards for horizontal runs) and
  /// protocol rounds executed. Zero for non-federated plans.
  size_t federated_silos = 0;
  size_t federated_rounds = 0;
  /// Federated reliability telemetry (all zero / empty on a healthy wire):
  /// silos declared lost (HFL degrade mode), rounds that ran under
  /// strength, retransmissions performed, and bytes burnt on transmissions
  /// that never arrived.
  std::vector<std::string> silos_dropped;
  size_t rounds_degraded = 0;
  size_t retries = 0;
  size_t bytes_wasted = 0;
  /// Parallelism the kernels actually ran with: the requested count (the
  /// request's `num_threads` when set, else the runtime default) capped by
  /// the pool's capacity. Chunk-geometry determinism follows the *requested*
  /// count; this field reports the execution width.
  size_t threads_used = 1;
  /// The factorized view the training run executed over (factorized plans
  /// only; null otherwise). `Amalur::Train` hands it to the model handle so
  /// in-sample serving reuses the silo-pushdown path instead of
  /// materializing features densely.
  std::shared_ptr<const factorized::FactorizedTable> factorized_table;
};

/// Executes plans against derived metadata.
class Executor {
 public:
  /// Runs `request` under `plan`. Federated plans require the linear
  /// regression task; vertical scenarios additionally need the shared
  /// sample space (every silo contributes every target row), horizontal
  /// ones >= 2 fact shards.
  Result<TrainOutcome> Run(const metadata::DiMetadata& metadata,
                           const Plan& plan, const TrainRequest& request) const;
};

}  // namespace core
}  // namespace amalur
