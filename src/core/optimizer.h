#pragma once

#include <string>

#include "cost/amalur_cost_model.h"
#include "cost/calibrator.h"
#include "metadata/di_metadata.h"

/// \file optimizer.h
/// The Amalur optimizer (Figure 3): given derived DI metadata and the user's
/// constraints, decide how training executes — push computation down to the
/// silos (factorize), integrate and export the target table (materialize),
/// or split the learning process across silos (federate, forced by privacy
/// constraints).

namespace amalur {
namespace core {

/// How the training run will be executed.
enum class ExecutionStrategy : int8_t {
  kFactorize = 0,
  kMaterialize = 1,
  kFederate = 2,
};

const char* ExecutionStrategyToString(ExecutionStrategy strategy);

/// The optimizer's verdict — also the payload `Amalur::Explain` returns for
/// integrations and trained models. For a model trained with a
/// `force_strategy` override, `strategy` is the forced one and
/// `explanation` records both the override and the optimizer's own choice;
/// `estimate` always carries the cost model's numbers.
struct Plan {
  ExecutionStrategy strategy = ExecutionStrategy::kMaterialize;
  /// Cost estimate backing the decision (absent for privacy-forced plans).
  cost::CostEstimate estimate;
  /// Human-readable justification.
  std::string explanation;
};

/// Cost-based plan chooser with a privacy override.
class Optimizer {
 public:
  explicit Optimizer(cost::AmalurCostModelOptions cost_options = {})
      : cost_model_(cost_options) {}

  /// Plans with the constants of a resolved calibration
  /// (`cost::ResolveCalibration` / `cost::Calibrator::CalibrateFromLog`);
  /// the calibration's provenance — calibrated or analytic-defaults
  /// fallback, and why — flows into every plan explanation.
  explicit Optimizer(const cost::Calibration& calibration)
      : cost_model_(calibration.options) {}

  /// Chooses the strategy. `privacy_constrained` reflects whether any
  /// participating source forbids data movement (§II.C: "In the existence
  /// of privacy constraints, Amalur will ... split the learning process").
  Plan Choose(const metadata::DiMetadata& metadata,
              bool privacy_constrained) const;

 private:
  cost::AmalurCostModel cost_model_;
};

}  // namespace core
}  // namespace amalur
