#include "core/integration_graph.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/status.h"

namespace amalur {
namespace core {

namespace {

/// Orders a node's outgoing edges: join children first (they stay in the
/// parent's shard), union siblings after (they open new shards), each group
/// in declaration order — this is what makes the emitted source order
/// shard-major.
struct Adjacency {
  std::vector<size_t> join_edges;
  std::vector<size_t> union_edges;
};

}  // namespace

Result<IntegrationGraphPlan> PlanIntegrationGraph(
    const std::vector<IntegrationEdge>& edges,
    const std::vector<std::string>& declared_sources) {
  if (edges.empty()) {
    return Status::InvalidArgument("an integration graph needs >= 1 edge");
  }
  const std::set<std::string> declared(declared_sources.begin(),
                                       declared_sources.end());

  // ---- Per-edge validation: endpoints, self-loops, duplicates, kinds.
  // Dimensions may have several join parents (conformed dimensions), so the
  // in-degree is tracked but only capped for facts below.
  std::set<std::pair<std::string, std::string>> seen_pairs;
  std::map<std::string, size_t> in_degree;
  std::map<std::string, size_t> union_in_degree;
  std::set<std::string> nodes;
  for (size_t e = 0; e < edges.size(); ++e) {
    const IntegrationEdge& edge = edges[e];
    for (const std::string* endpoint : {&edge.left, &edge.right}) {
      if (endpoint->empty()) {
        return Status::InvalidArgument("edge ", e,
                                       " has an empty source name");
      }
      if (!declared.empty() && declared.count(*endpoint) == 0) {
        return Status::InvalidArgument(
            "edge ", e, " references source '", *endpoint,
            "', which is not among the spec's sources");
      }
      nodes.insert(*endpoint);
      in_degree.emplace(*endpoint, 0);
      union_in_degree.emplace(*endpoint, 0);
    }
    if (edge.left == edge.right) {
      return Status::InvalidArgument("edge ", e, " joins source '", edge.left,
                                     "' to itself");
    }
    auto ordered = std::minmax(edge.left, edge.right);
    if (!seen_pairs.insert({ordered.first, ordered.second}).second) {
      return Status::InvalidArgument("duplicate edge between '", edge.left,
                                     "' and '", edge.right, "'");
    }
    if (edges.size() > 1 && edge.kind == rel::JoinKind::kFullOuterJoin) {
      return Status::InvalidArgument(
          "edge ", e, " ('", edge.left, "' -> '", edge.right, "'): the ",
          rel::JoinKindToString(edge.kind),
          " relationship is only valid on single-edge (pairwise) specs; "
          "graph edges are left/inner joins or unions");
    }
    ++in_degree[edge.right];
    if (edge.kind == rel::JoinKind::kUnion) ++union_in_degree[edge.right];
  }
  // A union-edge child is a fact shard; a fact joins the graph through
  // exactly one parent edge — only dimensions may be conformed.
  for (const auto& [name, unions] : union_in_degree) {
    if (unions > 0 && in_degree[name] > 1) {
      return Status::InvalidArgument(
          "source '", name,
          "' is a fact shard (a union-edge child) with several parent "
          "edges; only dimensions may be conformed");
    }
  }
  for (const std::string& name : declared_sources) {
    if (nodes.count(name) == 0) {
      return Status::InvalidArgument(
          "integration graph is disconnected: source '", name,
          "' appears in no edge");
    }
  }

  // ---- Root discovery. Exactly one node may have no parent; zero roots is
  // a cycle through every node, several roots a disconnected forest.
  std::vector<std::string> roots;
  for (const auto& [name, degree] : in_degree) {
    if (degree == 0) roots.push_back(name);
  }
  if (roots.empty()) {
    return Status::InvalidArgument("integration graph contains a cycle");
  }
  if (roots.size() > 1) {
    return Status::InvalidArgument(
        "integration graph is disconnected: '", roots[0], "' and '", roots[1],
        "' are both roots (no edge path connects them)");
  }

  // ---- Depth-first traversal from the root, join children before union
  // siblings. A node with several parents (a conformed dimension) is
  // *deferred* until its last parent edge arrives, then visited once — its
  // parent edges are emitted together in declaration order, so every
  // emitted edge's endpoints are both already indexed and parents precede
  // children (the layout `DeriveGraph` requires). Unreached nodes have a
  // parent edge but no path from the root: a cycle component.
  std::map<std::string, Adjacency> adjacency;
  for (size_t e = 0; e < edges.size(); ++e) {
    Adjacency& adj = adjacency[edges[e].left];
    (edges[e].kind == rel::JoinKind::kUnion ? adj.union_edges
                                            : adj.join_edges)
        .push_back(e);
  }

  IntegrationGraphPlan plan;
  std::map<std::string, size_t> index_of;
  std::map<std::string, size_t> depth;
  std::map<std::string, size_t> remaining_parents;
  std::map<std::string, std::vector<size_t>> pending_edges;
  for (const auto& [name, degree] : in_degree) {
    remaining_parents[name] = degree;
  }
  std::set<std::string> facts{roots[0]};
  size_t max_depth = 0;
  bool any_union = false;
  size_t shared_dimensions = 0;

  // Iterative DFS; the explicit stack holds edge indices to expand.
  const auto visit_node = [&](const std::string& name) {
    index_of[name] = plan.sources.size();
    plan.sources.push_back(name);
  };
  visit_node(roots[0]);
  std::vector<size_t> stack;
  const auto push_children = [&](const std::string& name) {
    auto it = adjacency.find(name);
    if (it == adjacency.end()) return;
    // Reverse push so the stack pops in declaration order, joins first.
    for (auto rit = it->second.union_edges.rbegin();
         rit != it->second.union_edges.rend(); ++rit) {
      stack.push_back(*rit);
    }
    for (auto rit = it->second.join_edges.rbegin();
         rit != it->second.join_edges.rend(); ++rit) {
      stack.push_back(*rit);
    }
  };
  push_children(roots[0]);
  while (!stack.empty()) {
    const size_t e = stack.back();
    stack.pop_back();
    const IntegrationEdge& edge = edges[e];
    if (edge.kind == rel::JoinKind::kUnion) {
      if (facts.count(edge.left) == 0) {
        return Status::InvalidArgument(
            "union edge '", edge.left, "' -> '", edge.right, "': '",
            edge.left, "' is a dimension; union edges stack fact shards only");
      }
      any_union = true;
      facts.insert(edge.right);
      depth[edge.right] = 0;
    } else {
      depth[edge.right] =
          std::max(depth[edge.right], depth[edge.left] + 1);
      max_depth = std::max(max_depth, depth[edge.right]);
    }
    pending_edges[edge.right].push_back(e);
    if (--remaining_parents[edge.right] > 0) continue;  // conformed: defer
    visit_node(edge.right);
    std::vector<size_t>& arrived = pending_edges[edge.right];
    std::sort(arrived.begin(), arrived.end());  // declaration order
    if (arrived.size() > 1) ++shared_dimensions;
    for (size_t pe : arrived) {
      plan.edges.push_back(edges[pe]);
      plan.metadata_edges.push_back(
          {index_of[edges[pe].left], index_of[edge.right], edges[pe].kind});
    }
    push_children(edge.right);
  }
  if (plan.sources.size() != nodes.size()) {
    for (const std::string& name : nodes) {
      if (index_of.count(name) == 0) {
        return Status::InvalidArgument(
            "integration graph contains a cycle involving source '", name,
            "'");
      }
    }
  }

  // The conformed-dimension *count* is not recorded on the plan: the single
  // source of truth is DiMetadata::num_shared_dimensions(), which
  // DeriveGraph derives from the same edge set. The shape IS re-derived
  // here because the planner must dispatch before any metadata exists; the
  // two classifications agree on every multi-edge graph by construction
  // (DeriveGraph never sees single-edge specs — those route to the
  // pairwise pipeline).
  plan.shape = edges.size() == 1 ? metadata::IntegrationShape::kPairwise
               : any_union       ? metadata::IntegrationShape::kUnionOfStars
               : shared_dimensions > 0
                   ? metadata::IntegrationShape::kConformedSnowflake
               : max_depth > 1 ? metadata::IntegrationShape::kSnowflake
                               : metadata::IntegrationShape::kStar;
  return plan;
}

}  // namespace core
}  // namespace amalur
