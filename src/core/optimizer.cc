#include "core/optimizer.h"

namespace amalur {
namespace core {

const char* ExecutionStrategyToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kFactorize:
      return "factorize";
    case ExecutionStrategy::kMaterialize:
      return "materialize";
    case ExecutionStrategy::kFederate:
      return "federate";
  }
  return "?";
}

Plan Optimizer::Choose(const metadata::DiMetadata& metadata,
                       bool privacy_constrained) const {
  Plan plan;
  if (privacy_constrained) {
    plan.strategy = ExecutionStrategy::kFederate;
    plan.explanation =
        "privacy constraint: source data may not leave its silo; the "
        "learning process is split across silos";
    return plan;
  }
  const cost::CostFeatures features = cost::CostFeatures::FromMetadata(metadata);
  plan.estimate = cost_model_.Estimate(features);
  plan.strategy = plan.estimate.Decision() == cost::Strategy::kFactorize
                      ? ExecutionStrategy::kFactorize
                      : ExecutionStrategy::kMaterialize;
  plan.explanation = cost_model_.Explain(features);
  return plan;
}

}  // namespace core
}  // namespace amalur
