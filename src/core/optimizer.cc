#include "core/optimizer.h"

namespace amalur {
namespace core {

const char* ExecutionStrategyToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kFactorize:
      return "factorize";
    case ExecutionStrategy::kMaterialize:
      return "materialize";
    case ExecutionStrategy::kFederate:
      return "federate";
  }
  return "?";
}

Plan Optimizer::Choose(const metadata::DiMetadata& metadata,
                       bool privacy_constrained) const {
  Plan plan;
  // Every explanation leads with the scenario's graph shape — pairwise,
  // star, snowflake or union-of-stars — so `Explain` callers see what kind
  // of integration the decision was made for.
  const std::string shape_prefix =
      std::string("graph shape: ") +
      metadata::IntegrationShapeToString(metadata.shape()) + "; ";
  if (privacy_constrained) {
    plan.strategy = ExecutionStrategy::kFederate;
    // The shape picks the federated protocol (§V): horizontally
    // partitioned scenarios run FedAvg per fact shard, vertically
    // partitioned ones the n-ary vertical FLR per silo. The same predicate
    // drives the executor's dispatch, so the explanation cannot drift from
    // what actually runs.
    const std::string protocol =
        metadata.IsHorizontallyPartitioned()
            ? "horizontal FedAvg over " +
                  std::to_string(metadata.num_shards()) + " fact shards"
            : "vertical n-ary FLR over " +
                  std::to_string(metadata.num_sources()) + " silos";
    plan.explanation =
        shape_prefix +
        "privacy constraint: source data may not leave its silo; the "
        "learning process is split across silos (" + protocol + ")";
    return plan;
  }
  const cost::CostFeatures features = cost::CostFeatures::FromMetadata(metadata);
  plan.estimate = cost_model_.Estimate(features);
  plan.strategy = plan.estimate.Decision() == cost::Strategy::kFactorize
                      ? ExecutionStrategy::kFactorize
                      : ExecutionStrategy::kMaterialize;
  plan.explanation = shape_prefix + cost_model_.Explain(features);
  return plan;
}

}  // namespace core
}  // namespace amalur
