#include "core/optimizer.h"

namespace amalur {
namespace core {

const char* ExecutionStrategyToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kFactorize:
      return "factorize";
    case ExecutionStrategy::kMaterialize:
      return "materialize";
    case ExecutionStrategy::kFederate:
      return "federate";
  }
  return "?";
}

Plan Optimizer::Choose(const metadata::DiMetadata& metadata,
                       bool privacy_constrained) const {
  Plan plan;
  // Every explanation leads with the scenario's graph shape — pairwise,
  // star, snowflake, conformed-snowflake or union-of-stars — so `Explain`
  // callers see what kind of integration the decision was made for;
  // conformed graphs also name how many dimensions are shared.
  std::string shape_prefix =
      std::string("graph shape: ") +
      metadata::IntegrationShapeToString(metadata.shape());
  if (metadata.num_shared_dimensions() > 0) {
    shape_prefix += " (" + std::to_string(metadata.num_shared_dimensions()) +
                    (metadata.num_shared_dimensions() == 1
                         ? " shared dimension)"
                         : " shared dimensions)");
  }
  shape_prefix += "; ";
  if (privacy_constrained) {
    plan.strategy = ExecutionStrategy::kFederate;
    // The shape picks the federated protocol (§V): horizontally
    // partitioned scenarios run FedAvg per fact shard, vertically
    // partitioned ones the n-ary vertical FLR per silo. The same predicate
    // drives the executor's dispatch, so the explanation cannot drift from
    // what actually runs.
    std::string protocol;
    if (metadata.IsHorizontallyPartitioned()) {
      // Only the shards that actually become FedAvg participants:
      // `AlignForHfl` skips empty row blocks (an empty fact silo, or a
      // shard fully dropped by an inner-join edge), and the explanation
      // must not promise participants that never train.
      const size_t active_shards = metadata.num_active_shards();
      protocol = "horizontal FedAvg over " + std::to_string(active_shards) +
                 (active_shards == 1 ? " fact shard" : " fact shards");
      if (active_shards < metadata.num_shards()) {
        protocol += " (" +
                    std::to_string(metadata.num_shards() - active_shards) +
                    " empty shard(s) skipped)";
      }
      if (active_shards < 2) {
        // The alignment will refuse a 0/1-participant federation; say so
        // here instead of promising a run that cannot happen.
        protocol += "; INFEASIBLE — horizontal federation needs >= 2 "
                    "non-empty fact shards";
      }
    } else {
      protocol = "vertical n-ary FLR over " +
                 std::to_string(metadata.num_sources()) + " silos";
    }
    plan.explanation =
        shape_prefix +
        "privacy constraint: source data may not leave its silo; the "
        "learning process is split across silos (" + protocol + ")";
    return plan;
  }
  const cost::CostFeatures features = cost::CostFeatures::FromMetadata(metadata);
  plan.estimate = cost_model_.Estimate(features);
  plan.strategy = plan.estimate.Decision() == cost::Strategy::kFactorize
                      ? ExecutionStrategy::kFactorize
                      : ExecutionStrategy::kMaterialize;
  plan.explanation = shape_prefix + cost_model_.Explain(features);
  return plan;
}

}  // namespace core
}  // namespace amalur
