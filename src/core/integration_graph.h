#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "metadata/di_metadata.h"

/// \file integration_graph.h
/// The graph planner behind the edge-list `IntegrationSpec`: validates an
/// edge set (connected, acyclic, one fact root, unions only between fact
/// shards, at most one parent per *fact*), classifies its shape (pairwise /
/// star / snowflake / conformed-snowflake / union-of-stars) and emits a
/// topological plan — sources ordered root first, shard-major, with every
/// edge's parent preceding its child — the exact layout
/// `DiMetadata::DeriveGraph` requires. Graphs are DAGs, not trees: a
/// dimension referenced by several join edges (a warehouse *conformed
/// dimension* — one `date` or `customer` table serving two parents) is
/// visited once, after its last parent, and its parent edges are emitted
/// together.

namespace amalur {
namespace core {

/// A validated, topologically ordered integration graph.
struct IntegrationGraphPlan {
  /// Sources in topological order: the fact root first, each shard's fact
  /// before its dimension subtree, shards in union order.
  std::vector<std::string> sources;
  /// The edges reordered so parents precede children (depth-first from the
  /// root: join children before union siblings).
  std::vector<IntegrationEdge> edges;
  /// The same edges with endpoints resolved to indices into `sources`.
  std::vector<metadata::MetadataEdge> metadata_edges;
  metadata::IntegrationShape shape = metadata::IntegrationShape::kPairwise;

  /// The fact root's name (== sources[0]).
  const std::string& root() const { return sources.front(); }
};

/// Validates `edges` and plans the traversal. `declared_sources`, when
/// non-empty, is the spec's explicit source list: every edge endpoint must
/// appear in it and every declared source must be reached by an edge.
/// Malformed graphs return `kInvalidArgument` with a precise message
/// (self-loop, duplicate edge, unknown source, a multi-parent fact shard,
/// cycle, disconnected graph, union under a dimension, non-pairwise full
/// outer edges).
Result<IntegrationGraphPlan> PlanIntegrationGraph(
    const std::vector<IntegrationEdge>& edges,
    const std::vector<std::string>& declared_sources);

}  // namespace core
}  // namespace amalur
