#ifndef AMALUR_CORE_AMALUR_H_
#define AMALUR_CORE_AMALUR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "core/executor.h"
#include "core/optimizer.h"
#include "cost/amalur_cost_model.h"
#include "integration/entity_resolution.h"
#include "integration/schema_matching.h"
#include "metadata/di_metadata.h"

/// \file amalur.h
/// The Amalur system facade — the end-to-end pipeline of Figure 3. Users
/// register silo tables, ask the system to *integrate* a pair (automatic
/// schema matching → target-schema synthesis → tgd generation → entity
/// resolution → the three metadata matrices) and then to *train* a model
/// over the integration; the optimizer picks factorized, materialized or
/// federated execution.
///
///     core::Amalur amalur;
///     amalur.catalog()->RegisterSource({"S1", s1, "hospital-er", false});
///     amalur.catalog()->RegisterSource({"S2", s2, "pulmonary", false});
///     auto integration = amalur.Integrate("S1", "S2",
///                                         rel::JoinKind::kFullOuterJoin);
///     core::TrainRequest request;
///     request.label_column = "m";
///     auto outcome = amalur.Train(*integration, request, "mortality-model");

namespace amalur {
namespace core {

/// Configuration of the system's components.
struct AmalurOptions {
  integration::SchemaMatcherOptions matcher;
  integration::EntityResolverOptions resolver;
  cost::AmalurCostModelOptions cost;
};

/// A completed integration: everything derived between two registered
/// sources. Handles are self-contained (they copy the derived metadata) and
/// can outlive catalog mutations.
struct IntegrationHandle {
  std::string base_name;
  std::string other_name;
  std::vector<integration::ColumnMatch> column_matches;
  integration::SchemaMapping mapping;
  rel::RowMatching matching;
  metadata::DiMetadata metadata;
  /// True when either source forbids data movement.
  bool privacy_constrained = false;
};

/// The system facade.
class Amalur {
 public:
  explicit Amalur(AmalurOptions options = {}) : options_(options) {}

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Runs the automatic integration pipeline between two registered sources:
  /// schema matching, target-schema synthesis (matched numeric columns merge
  /// into one target column; source-private numeric columns carry over;
  /// string columns serve as join evidence only), tgd generation for `kind`,
  /// entity resolution, and metadata derivation. Results are cached in the
  /// catalog and returned as a self-contained handle.
  Result<IntegrationHandle> Integrate(const std::string& base_name,
                                      const std::string& other_name,
                                      rel::JoinKind kind);

  /// Plans and executes a training run over an integration. When
  /// `model_name` is non-empty the trained model is registered in the
  /// catalog with its final loss as the metric.
  Result<TrainOutcome> Train(const IntegrationHandle& integration,
                             const TrainRequest& request,
                             const std::string& model_name = "");

  /// The optimizer's plan for an integration (exposed for inspection).
  Plan PlanFor(const IntegrationHandle& integration) const;

 private:
  AmalurOptions options_;
  Catalog catalog_;
};

}  // namespace core
}  // namespace amalur

#endif  // AMALUR_CORE_AMALUR_H_
