#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "core/executor.h"
#include "core/integration_graph.h"
#include "core/optimizer.h"
#include "cost/amalur_cost_model.h"
#include "cost/calibrator.h"
#include "integration/entity_resolution.h"
#include "integration/schema_matching.h"
#include "metadata/di_metadata.h"

/// \file amalur.h
/// The Amalur system facade — the end-to-end pipeline of Figure 3. Users
/// register silo tables, describe *what* to integrate with an
/// `IntegrationSpec` — either a flat source list (two sources or an n-ary
/// star) or an explicit **integration graph**: a list of
/// `core::IntegrationEdge`s forming a tree of left joins and unions, which
/// unlocks snowflake schemas (dimension-of-dimension chains) and
/// union-of-stars scenarios (horizontally partitioned fact shards, each
/// with its own dimensions). The system validates and topologically orders
/// the graph, then runs automatic schema matching → target-schema
/// synthesis → tgd generation → row matching → metadata derivation per
/// edge. Training returns a `ModelHandle` that serves predictions and
/// evaluations — in-sample through the factorized runtime when the plan
/// was factorized, or on new relational data; the optimizer's choice of
/// factorized, materialized or federated execution (and the graph's shape)
/// is inspectable through `Explain`.
///
///     core::Amalur amalur;
///     amalur.catalog()->RegisterSource({"claims",  claims,  "dept", false});
///     amalur.catalog()->RegisterSource({"patients", patients, "reg", false});
///     amalur.catalog()->RegisterSource({"regions", regions, "geo", false});
///
///     core::IntegrationSpec spec;
///     spec.name = "claims-snowflake";    // registered in the catalog
///     spec.edges = {{"claims", "patients", rel::JoinKind::kLeftJoin},
///                   {"patients", "regions", rel::JoinKind::kLeftJoin}};
///     auto integration = amalur.Integrate(spec);
///
///     core::TrainRequest request;
///     request.label_column = "cost";
///     auto model = amalur.Train(*integration, request, "cost-model");
///     auto in_sample = model->Predict();          // factorized serving
///     auto report = model->Evaluate(holdout_table);
///     core::Plan plan = amalur.Explain(*model);   // strategy + shape + cost
///
/// Handle lifetime: `IntegrationHandle` and `ModelHandle` are self-contained
/// value objects — they copy everything they need (derived metadata,
/// weights, the training-time factorized view), so they remain valid across
/// catalog mutations and even after the `Amalur` instance is destroyed.
/// Handles stored in the catalog under a name (`IntegrationSpec::name`, the
/// `model_name` argument of `Train`) are copies too;
/// `Catalog::GetIntegration`/`GetModel` pointers stay valid until the
/// catalog itself is destroyed.

namespace amalur {

// The serving tier (src/serving/) sits above core: core only hands trained
// handles over to it, so the declarations stay forward-only here and
// `ModelHandle::Deploy` is defined next to the registry.
namespace serving {
class DeployedModel;
struct DeployOptions;
class ModelRegistry;
}  // namespace serving

namespace core {

/// Configuration of the system's components.
struct AmalurOptions {
  integration::SchemaMatcherOptions matcher;
  integration::EntityResolverOptions resolver;
  cost::AmalurCostModelOptions cost;
};

/// Declarative description of one integration scenario: which registered
/// sources participate and how their rows relate (Table I). Two equivalent
/// forms exist — the explicit edge list (`edges`, the general form) and the
/// flat `sources`/`relationships` list (a convenience that lowers into
/// edges hanging off one base).
struct IntegrationSpec {
  /// Optional catalog name. Non-empty → the resulting handle is registered
  /// via `Catalog::RegisterIntegration` (unique names, `kAlreadyExists` on
  /// re-use) and can be fetched later with `Catalog::GetIntegration`.
  std::string name;

  /// **Edge-list form.** When non-empty, the integration is this graph: a
  /// DAG of `kLeftJoin` / `kInnerJoin` edges (parent retained, child
  /// dimension — chains allowed, which is how snowflake schemas are
  /// expressed; an inner edge additionally drops target rows where the
  /// child has no match) and `kUnion` edges (sibling fact shards —
  /// union-of-stars). A dimension referenced by several join edges is a
  /// *conformed dimension*: its columns appear once in the target and its
  /// silo is integrated once. A single edge of any relationship runs the
  /// pairwise pipeline. The graph must be connected and acyclic with one
  /// fact root and at most one parent per fact shard; violations return
  /// precise `kInvalidArgument` messages. When `edges` is set,
  /// `relationships` is ignored, `star_base` must be empty (the edge list
  /// already fixes the root), and `sources` (if non-empty) merely declares
  /// the expected participant set.
  std::vector<IntegrationEdge> edges;

  /// **Flat form** (used when `edges` is empty). Ordered names of >= 2
  /// registered sources. The first entry is the base table (the running
  /// example's S1; the fact table of a star) unless `star_base` overrides
  /// it. Two sources run the pairwise pipeline; three or more lower into a
  /// star (base left-joined to each dimension).
  std::vector<std::string> sources;

  /// Flat form only: dataset relationship per edge (base, sources[i+1]) —
  /// either exactly one entry, applied to every edge, or sources.size()-1
  /// entries. Star scenarios (>= 3 sources) require `kLeftJoin` on every
  /// edge; use the edge-list form for mixed-relationship graphs.
  std::vector<rel::JoinKind> relationships = {rel::JoinKind::kInnerJoin};

  /// Flat form only: name of the source to use as the star base / pairwise
  /// base. Must be an element of `sources`; empty means `sources[0]`.
  std::string star_base;
};

/// Per-dataset evaluation metrics of a trained model (task-dependent:
/// regression fills `mse`, classification fills `log_loss`/`accuracy`).
struct EvaluationReport {
  size_t rows = 0;
  /// Mean squared error of predictions vs. labels (regression tasks).
  double mse = 0.0;
  /// Binary log-loss of predicted probabilities (classification tasks).
  double log_loss = 0.0;
  /// Fraction of correct 0/1 predictions at threshold 0.5 (classification).
  double accuracy = 0.0;
  /// The task's headline metric: `mse` for regression, `accuracy` for
  /// classification.
  double primary = 0.0;
};

/// A trained model returned by `Amalur::Train`: the executor's outcome plus
/// everything needed to serve the model on new relational data. Handles are
/// self-contained values (weights and schema are copied); registering under
/// a model name additionally records a `ModelEntry` in the catalog.
class ModelHandle {
 public:
  ModelHandle() = default;

  /// Catalog registration name (empty for unregistered models).
  const std::string& name() const { return name_; }
  TrainingTask task() const { return task_; }
  /// Target-schema column the model predicts.
  const std::string& label_column() const { return label_column_; }
  /// Feature columns in weight order (target schema minus the label).
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  /// Sources of the integration the model was trained over.
  const std::vector<std::string>& source_names() const {
    return source_names_;
  }
  /// The optimizer plan that was executed (including the cost estimate that
  /// justified it; see also `Amalur::Explain`).
  const Plan& plan() const { return plan_; }
  /// Raw training outcome: weights, loss history, timings, bytes moved.
  const TrainOutcome& outcome() const { return outcome_; }
  /// Final weights in `feature_names()` order (cols x 1).
  const la::DenseMatrix& weights() const { return outcome_.weights; }

  /// Scores `data` with the trained weights: y-hat = F w for regression,
  /// sigma(F w) for classification (rows x 1). Columns are aligned to the
  /// training schema *by name* — positional order never matters, so a
  /// shuffled holdout table scores identically. Every feature column must
  /// be present in `data` and numeric; a missing or string-typed column is
  /// `kInvalidArgument`. The label column is not required. A zero-row table
  /// with the right schema scores to an empty 0 x 1 matrix.
  Result<la::DenseMatrix> Predict(const rel::Table& data) const;

  /// Scores the integration's own target rows (in-sample serving, rT x 1)
  /// without the caller materializing anything: models whose executed plan
  /// was factorized run the factorized LMM straight over the silo matrices
  /// (the training-matrix path — the target table is never built); other
  /// plans materialize the dense feature matrix first.
  Result<la::DenseMatrix> Predict() const;

  /// Predicts over `data` and scores against its label column (which must
  /// be present under `label_column()` and numeric — same by-name alignment
  /// and `kInvalidArgument` contract as `Predict`). A zero-row table is
  /// `kInvalidArgument` too: every metric's empty average is 0.0, so the
  /// resulting report would impersonate a perfect model.
  Result<EvaluationReport> Evaluate(const rel::Table& data) const;

  /// In-sample evaluation against the target's label column, routed through
  /// the factorized runtime exactly like the no-argument `Predict()`.
  Result<EvaluationReport> Evaluate() const;

  /// Deploys this model into the serving tier: builds an immutable
  /// `serving::DeployedModel` snapshot (weights, schema, factorized view,
  /// partial-score cache) and publishes it in `registry` under `name`
  /// (empty = the model's catalog name). Same error contract as
  /// `ModelRegistry::Deploy`. Defined with the registry in src/serving/.
  Result<std::shared_ptr<const serving::DeployedModel>> Deploy(
      serving::ModelRegistry* registry, const std::string& name = "") const;
  Result<std::shared_ptr<const serving::DeployedModel>> Deploy(
      serving::ModelRegistry* registry, const std::string& name,
      const serving::DeployOptions& options) const;

  /// Deploy-time snapshot state, read by the serving tier: the factorized
  /// view training ran over (factorized plans) or the derived-metadata copy
  /// (other plans) — `Train` sets exactly one — plus the label's
  /// target-schema position.
  const std::shared_ptr<const factorized::FactorizedTable>& factorized_table()
      const {
    return factorized_table_;
  }
  const std::shared_ptr<const metadata::DiMetadata>& metadata() const {
    return metadata_;
  }
  size_t label_index() const { return label_index_; }

 private:
  friend class Amalur;

  /// Fills the task-dependent metric report for `predictions` vs `labels`.
  EvaluationReport Score(const la::DenseMatrix& predictions,
                         const la::DenseMatrix& labels) const;
  /// Factorized in-sample scoring (requires `factorized_table_`).
  la::DenseMatrix PredictFactorized() const;
  /// Dense in-sample scoring over an already-materialized target matrix.
  la::DenseMatrix PredictDense(const la::DenseMatrix& target) const;

  std::string name_;
  TrainingTask task_ = TrainingTask::kLinearRegression;
  std::string label_column_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> source_names_;
  Plan plan_;
  TrainOutcome outcome_;
  /// In-sample serving state: factorized-plan models share the exact view
  /// the executor trained over; other plans keep one copy of the derived
  /// metadata (no row-class plans built) and materialize on demand.
  /// Exactly one of the two is set by `Train`.
  std::shared_ptr<const factorized::FactorizedTable> factorized_table_;
  std::shared_ptr<const metadata::DiMetadata> metadata_;
  size_t label_index_ = 0;
};

/// The system facade.
class Amalur {
 public:
  /// Cost-model constants are resolved once per instance: a fitted-constants
  /// file named by `$AMALUR_CALIBRATION_FILE` overrides the analytic
  /// defaults (or the caller's `options.cost` constants), falling back to
  /// them — with the reason surfaced in every plan explanation — when the
  /// file is missing or malformed. A per-request
  /// `TrainRequest::calibration_file` overrides both for one `Train` call.
  explicit Amalur(AmalurOptions options = {}) : options_(std::move(options)) {
    options_.cost = cost::ResolveCalibration(options_.cost).options;
  }

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Runs the automatic integration pipeline over the spec's graph. The
  /// spec's edge set (explicit, or lowered from the flat form) is validated
  /// (connected, acyclic, one fact root), topologically ordered and
  /// dispatched by shape:
  ///
  ///  * **Pairwise** (one edge, any relationship): schema matching,
  ///    target-schema synthesis (matched numeric columns merge into one
  ///    target column; source-private numeric columns carry over; string
  ///    columns and surrogate keys serve as join evidence only), tgd
  ///    generation, row matching (exact-key when a surrogate key was
  ///    discovered, fuzzy entity resolution otherwise), two-source
  ///    metadata derivation.
  ///  * **Star** (depth-1 left joins): per-dimension schema matching
  ///    against the base discovers the join keys and
  ///    `DiMetadata::DeriveStar` produces one indicator/mapping/redundancy
  ///    triple per silo — the unchanged fast path.
  ///  * **Snowflake** (chained left/inner joins): per-edge matching walks
  ///    the dimension chains and `DiMetadata::DeriveGraph` composes the
  ///    matchings so the factorized runtime sees one fan-out per silo;
  ///    inner edges restrict the target row set through the composed
  ///    indicator.
  ///  * **Conformed snowflake** (a dimension with several join parents):
  ///    the shared dimension is matched against every parent, appears once
  ///    in the target schema, and merges its parent chains into one
  ///    indicator.
  ///  * **Union-of-stars** (`kUnion` edges between fact shards): shard
  ///    columns matched across union edges merge into shared target
  ///    columns, and the shards' row blocks stack into one target (a
  ///    dimension may be shared between shards).
  ///
  /// Edge artifacts (column matches, row matchings) are cached in the
  /// catalog per source pair; when `spec.name` is non-empty the whole
  /// handle is registered as a first-class catalog object.
  Result<IntegrationHandle> Integrate(const IntegrationSpec& spec);

  /// Two-source convenience overload; delegates to the spec form.
  Result<IntegrationHandle> Integrate(const std::string& base_name,
                                      const std::string& other_name,
                                      rel::JoinKind kind);

  /// Plans and executes a training run over an integration. The optimizer
  /// chooses the strategy unless `request.force_strategy` pins one
  /// (privacy-constrained integrations cannot be forced onto data-moving
  /// strategies). When `model_name` is non-empty the trained model is also
  /// registered in the catalog with its final loss as the metric.
  Result<ModelHandle> Train(const IntegrationHandle& integration,
                            const TrainRequest& request,
                            const std::string& model_name = "");

  /// The optimizer's plan for an integration: chosen strategy, the cost
  /// estimate backing the decision, and a human-readable justification.
  Plan Explain(const IntegrationHandle& integration) const;

  /// The plan a trained model actually executed (including a forced
  /// strategy, which is recorded in the plan's explanation).
  const Plan& Explain(const ModelHandle& model) const { return model.plan(); }

 private:
  Result<IntegrationHandle> IntegratePair(const IntegrationSpec& spec);
  Result<IntegrationHandle> IntegrateStar(const IntegrationSpec& spec);
  Result<IntegrationHandle> IntegrateGraph(const IntegrationSpec& spec,
                                           const IntegrationGraphPlan& plan);

  AmalurOptions options_;
  Catalog catalog_;
};

}  // namespace core
}  // namespace amalur
