#include <unordered_map>
double Reduce() {
  std::unordered_map<int, double> cells;
  double sum = 0.0;
  for (const auto& kv : cells) sum += kv.second;
  return sum;
}
