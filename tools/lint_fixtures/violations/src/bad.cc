#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
std::mutex raw_mu;
void Nap() {
  std::lock_guard<std::mutex> lock(raw_mu);
  std::this_thread::sleep_for(std::chrono::milliseconds(rand() % 10));
}
