int Helper() { return 42; }
