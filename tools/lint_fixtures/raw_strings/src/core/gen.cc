namespace core {

// The R"(...)" below contains an unmatched double quote. A lexer without a
// raw-string state treats it as reopening an ordinary string literal and
// blanks the REST OF THE FILE as "inside a string" — hiding the std::mutex
// on the next line. It must still be found.
const char* kDoc = R"(an embedded " quote, plus a decoy std::mutex mention)";
std::mutex after_raw_string;  // raw-mutex: must stay visible

const char* kDelim = R"html(more " quotes " here)html";
const char* kPlain = "a quoted std::mutex is not a use";

}  // namespace core
