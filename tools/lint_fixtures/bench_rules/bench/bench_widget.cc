#include "common/thread_annotations.h"

int main() {
  std::mutex raw_in_bench;            // raw-mutex: benches are not exempt
  std::this_thread::sleep_for(x);     // wall-clock: a sleeping bench lies
  (void)raw_in_bench;
  return 0;
}
