#pragma once

#include <mutex>

namespace common {
class Mutex {};
class MutexLock {};
}  // namespace common
