#include <cstdlib>

int main() {
  int noise = rand();                 // wall-clock: unseeded randomness
  (void)noise;
  return 0;
}
