#include <mutex>
// A justified escape is allowed:
std::mutex cb_mu;  // NOLINT(amalur-raw-mutex): handed to a C callback API that cannot see our wrappers
// A bare escape is itself a finding (and still silences the rule):
std::mutex bare_mu;  // NOLINT(amalur-raw-mutex)
