// Exempt file: the wrappers themselves are allowed to touch the raw
// primitives.
#include <mutex>
namespace fixture {
class Mutex {
  std::mutex mu_;
};
}  // namespace fixture
