#include <unordered_map>
#include <vector>
// Unordered lookups are fine in kernels; only iteration is banned.
double SumBy(const std::vector<int>& keys) {
  std::unordered_map<int, double> index;
  double sum = 0.0;
  for (int key : keys) sum += index.count(key) ? index[key] : 0.0;
  return sum;
}
