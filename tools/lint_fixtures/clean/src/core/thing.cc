// Mentions of std::mutex or rand() in comments must not fire, and neither
// must quoted ones.
#include <string>
const char* kDoc = "never call rand() or take a std::mutex here";
int Lookup(int x) { return x + 1; }
