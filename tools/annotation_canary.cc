// Negative compile test for the thread-safety gate.
//
// This file reads a GUARDED_BY field without holding its mutex — under a
// compiler that understands the annotations (Clang with -Wthread-safety) it
// MUST NOT compile. CMake registers a ctest entry that builds this target
// and is marked WILL_FAIL: if the build ever *succeeds* under such a
// compiler, the gate has rotted (annotations stripped, flags dropped, or the
// wrappers lost their capability attributes) and the test suite says so.
//
// Never add this file to the library; it is referenced only by the
// `annotation_canary` object target.

#include "common/thread_annotations.h"

namespace {

class Canary {
 public:
  // Deliberate violation: `value_` requires `mu_`, which is not held.
  int ReadWithoutLock() { return value_; }

  // The disciplined twin, so the file documents both sides of the idiom.
  int ReadWithLock() {
    amalur::common::MutexLock lock(mu_);
    return value_;
  }

 private:
  amalur::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int CanaryEntry() {
  Canary canary;
  return canary.ReadWithoutLock() + canary.ReadWithLock();
}
