// Negative compile test for the [[nodiscard]] Status gate.
//
// This file drops a returned `Status` on the floor. It is compiled with
// -Werror=unused-result (any compiler), so it MUST NOT compile; the ctest
// entry building it is marked WILL_FAIL. If this ever compiles, `Status`
// lost its [[nodiscard]] and silent error-dropping is back — exactly the
// regression the gate exists to prevent.
//
// Never add this file to the library; it is referenced only by the
// `nodiscard_canary` object target.

#include "common/status.h"

namespace {

amalur::Status MightFail() { return amalur::Status::Internal("dropped"); }

amalur::Result<int> MightFailWithValue() {
  return amalur::Status::Internal("also dropped");
}

}  // namespace

void DiscardsStatus() {
  MightFail();           // deliberate violation: Status discarded
  MightFailWithValue();  // deliberate violation: Result discarded
}
