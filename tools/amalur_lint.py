#!/usr/bin/env python3
"""amalur_lint: repo-specific static checks for house invariants.

Rules (each can be silenced per line with `// NOLINT(amalur-<rule>): <reason>`;
the reason is mandatory — a bare NOLINT is itself a finding):

  raw-mutex            src/, bench/, and examples/ must not use std::mutex /
                       std::shared_mutex / their guards /
                       std::condition_variable directly. Only the
                       capability-annotated wrappers in
                       src/common/thread_annotations.h carry the Clang
                       thread-safety annotations the CI gate checks, so raw
                       primitives would silently escape the analysis.
  wall-clock           src/, bench/, and examples/ must not call
                       rand()/srand(), std::random_device,
                       sleep_for/sleep_until/usleep/sleep. Randomness goes
                       through seeded common::Rng, waiting through simulated
                       time — both are load-bearing for bitwise-reproducible
                       runs (and for chaos tests that replay fault streams).
                       Benchmarks are no exception: a sleeping or
                       nondeterministic benchmark cannot feed the cost-model
                       calibration.
  unordered-iteration  Kernel hot paths (src/la, src/factorized, src/ml,
                       src/metadata) must not iterate unordered containers:
                       iteration order is unspecified, so a reduction fed by
                       it breaks the bitwise-determinism contract. Lookups
                       are fine; iterate a sorted structure instead.
  test-registration    Every .cc under tests/ must be named *_test.cc and
                       live exactly at tests/<suite>/<file>.cc — the CMake
                       suite glob is one level deep and non-recursive, so a
                       deeper or misnamed file would silently never build or
                       run. CMakeLists.txt must keep the per-suite
                       registration block.

Deeper architecture checks (layering DAG, lock-order graph, include hygiene)
live in the tools/analysis package; this linter shares its C++ lexer
(tools/analysis/cpp_source.py), so raw string literals, comments, and NOLINT
parsing behave identically in both tools.

Usage:
  tools/amalur_lint.py [--root DIR] [--github]
                                      lint a repo rooted at DIR (default: the
                                      repo containing this script); --github
                                      adds problem-matcher annotations
                                      (auto-enabled under GITHUB_ACTIONS)
  tools/amalur_lint.py --self-test    run the fixture-based self-tests

Exit status: 0 = clean, 1 = findings (or self-test failure).
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "analysis"))

from cpp_source import nolint_rules as shared_nolint_rules
from cpp_source import strip_comments  # noqa: F401  (re-exported for tests)
from findings import Finding, github_mode, report

KERNEL_DIRS = ("src/la", "src/factorized", "src/ml", "src/metadata")
RAW_MUTEX_EXEMPT = ("src/common/thread_annotations.h",)
# Trees scanned for source rules: tests/ is exempt (tests may exercise raw
# primitives to race the wrappers themselves), everything else is not.
SOURCE_TREES = ("src", "bench", "examples")
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_)?(?:shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|std::condition_variable(?:_any)?\b")
WALL_CLOCK_RE = re.compile(
    r"(?<![\w:])s?rand\s*\("
    r"|std::random_device\b"
    r"|\bsleep_(?:for|until)\b"
    r"|(?<![\w:])u?sleep\s*\(")
UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;({]*?>\s+(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*\*?(\w+)\s*\)")


def nolint_rules(raw_line, findings, path, lineno):
    """Rules silenced on this line. A NOLINT without a reason is a finding."""
    return shared_nolint_rules(
        raw_line, lambda rule: findings.append(Finding(
            "nolint-reason", path, lineno,
            f"NOLINT(amalur-{rule}) needs a reason: "
            f"`// NOLINT(amalur-{rule}): <why this is safe>`")))


def scan_pattern(rel, raw_lines, code_lines, rule, regex, message,
                 findings):
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        if not regex.search(code):
            continue
        if rule in nolint_rules(raw, findings, rel, lineno):
            continue
        findings.append(Finding(rule, rel, lineno, message))


def lint_source_file(root, rel, findings):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    code_lines = strip_comments(text).splitlines()

    if rel not in RAW_MUTEX_EXEMPT:
        scan_pattern(
            rel, raw_lines, code_lines, "raw-mutex", RAW_MUTEX_RE,
            "raw standard-library lock primitive; use the annotated "
            "common::Mutex/SharedMutex/MutexLock/SharedLock/CondVar wrappers "
            "(src/common/thread_annotations.h) so the Clang thread-safety "
            "gate can see it", findings)
    scan_pattern(
        rel, raw_lines, code_lines, "wall-clock", WALL_CLOCK_RE,
        "unseeded randomness or wall-clock sleep; use seeded common::Rng "
        "and simulated time (runs must be bitwise-reproducible)", findings)

    if rel.startswith(tuple(d + "/" for d in KERNEL_DIRS)):
        unordered_vars = set(UNORDERED_DECL_RE.findall(
            "\n".join(code_lines)))
        if unordered_vars:
            for lineno, (raw, code) in enumerate(
                    zip(raw_lines, code_lines), 1):
                m = RANGE_FOR_RE.search(code)
                if not m or m.group(1) not in unordered_vars:
                    continue
                if "unordered-iteration" in nolint_rules(
                        raw, findings, rel, lineno):
                    continue
                findings.append(Finding(
                    "unordered-iteration", rel, lineno,
                    f"iterating unordered container '{m.group(1)}' in a "
                    "kernel hot path: iteration order is unspecified, so "
                    "any reduction fed by it breaks bitwise determinism; "
                    "iterate a sorted structure instead"))


def lint_tests_tree(root, findings):
    tests_dir = os.path.join(root, "tests")
    if not os.path.isdir(tests_dir):
        return
    for dirpath, _, filenames in os.walk(tests_dir):
        for name in filenames:
            if not name.endswith(".cc"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            parts = rel.split(os.sep)
            # Expected shape: tests/<suite>/<file>_test.cc
            if len(parts) != 3:
                findings.append(Finding(
                    "test-registration", rel, 0,
                    "test sources must live exactly at "
                    "tests/<suite>/<file>.cc — the CMake suite glob is "
                    "non-recursive, so this file would never be built or "
                    "run"))
                continue
            if not name.endswith("_test.cc"):
                findings.append(Finding(
                    "test-registration", rel, 0,
                    "every .cc under tests/ must be named *_test.cc (it is "
                    "compiled into the suite binary either way; the naming "
                    "keeps intent and grep-ability uniform)"))
    cmake = os.path.join(root, "CMakeLists.txt")
    if os.path.isfile(cmake):
        with open(cmake, encoding="utf-8", errors="replace") as f:
            cmake_text = f.read()
        if "add_test(NAME ${suite}" not in cmake_text:
            findings.append(Finding(
                "test-registration", "CMakeLists.txt", 0,
                "per-suite test registration block "
                "(`add_test(NAME ${suite} ...)`) is missing: tests/ suites "
                "would silently stop running under ctest"))


def lint_repo(root):
    findings = []
    for tree in SOURCE_TREES:
        tree_dir = os.path.join(root, tree)
        if not os.path.isdir(tree_dir):
            continue
        for dirpath, _, filenames in os.walk(tree_dir):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                rel = rel.replace(os.sep, "/")
                lint_source_file(root, rel, findings)
    lint_tests_tree(root, findings)
    return findings


# ------------------------------------------------------------- self-tests

def self_test():
    """Runs the linter over the committed fixtures in tools/lint_fixtures/.

    Each fixture directory is a miniature repo root; expectations.txt in it
    lists `<rule> <count>` lines (rules not listed must not fire)."""
    here = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(here, "lint_fixtures")
    if not os.path.isdir(fixtures):
        print("self-test: missing fixture directory", fixtures)
        return 1
    failures = 0
    cases = sorted(d for d in os.listdir(fixtures)
                   if os.path.isdir(os.path.join(fixtures, d)))
    if not cases:
        print("self-test: no fixture cases found")
        return 1
    for case in cases:
        case_root = os.path.join(fixtures, case)
        expect_path = os.path.join(case_root, "expectations.txt")
        expected = {}
        with open(expect_path, encoding="utf-8") as f:
            for line in f:
                line = line.split("#", 1)[0].strip()
                if not line:
                    continue
                rule, count = line.split()
                expected[rule] = int(count)
        findings = lint_repo(case_root)
        got = {}
        for finding in findings:
            got[finding.rule] = got.get(finding.rule, 0) + 1
        if got == expected:
            print(f"self-test [{case}]: OK ({sum(got.values())} findings)")
        else:
            failures += 1
            print(f"self-test [{case}]: FAIL — expected {expected}, "
                  f"got {got}")
            for finding in findings:
                print("   ", finding)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root to lint (default: this repo)")
    parser.add_argument("--github", action="store_true",
                        help="also emit GitHub problem-matcher annotations "
                             "(auto-enabled under GITHUB_ACTIONS)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture-based self-tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = lint_repo(root)
    report(findings, github_mode(args.github))
    if findings:
        print(f"amalur_lint: {len(findings)} finding(s)")
        return 1
    print("amalur_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
