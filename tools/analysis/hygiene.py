"""Include hygiene for src/.

Rules:
  pragma-once       every header under src/ must contain `#pragma once`.
                    (House style: the pragma, not ifndef guards — one line,
                    no guard-name drift when files move.)
  iwyu              include-what-you-use for the curated house vocabulary:
                    a file whose code uses Status/Result/Span/Rng or the
                    annotated lock wrappers must include the defining header
                    directly, not inherit it transitively — transitive
                    includes break the moment an intermediate header sheds a
                    dependency.
  forbidden-include including another file's `.cc`, or including a std
                    header that has a designated owner: the raw concurrency
                    headers belong to common/thread_annotations.h (only the
                    wrappers carry thread-safety annotations), <random> is
                    banned outright (seeded common::Rng is the only
                    randomness source), <chrono>/<ctime> belong to
                    common/stopwatch.h and <thread> to the pool (wall-clock
                    and threads are load-bearing for reproducibility).

Escapes: `// NOLINT(amalur-<rule>): <reason>` on the offending line
(`amalur-pragma-once` anywhere in the file's first 10 lines).
"""

import re

from cpp_source import nolint_rules
from findings import Finding

# token -> defining header. Tokens are matched against stripped code with
# word boundaries, so MutexLock does not count as a use of Mutex.
HOUSE_TYPES = {
    "Status": "common/status.h",
    "Result": "common/status.h",
    "Span": "common/span.h",
    "Rng": "common/rng.h",
    "Mutex": "common/thread_annotations.h",
    "SharedMutex": "common/thread_annotations.h",
    "MutexLock": "common/thread_annotations.h",
    "SharedLock": "common/thread_annotations.h",
    "CondVar": "common/thread_annotations.h",
}

# std header -> src files allowed to include it (empty = banned everywhere).
OWNED_STD_HEADERS = {
    "mutex": ("src/common/thread_annotations.h",),
    "shared_mutex": ("src/common/thread_annotations.h",),
    "condition_variable": ("src/common/thread_annotations.h",),
    "random": (),
    "chrono": ("src/common/stopwatch.h",),
    "ctime": ("src/common/stopwatch.h",),
    "thread": ("src/common/thread_pool.h", "src/common/thread_pool.cc"),
}


def _nolint(findings, source, line):
    raw = source.raw_lines[line - 1] if 0 < line <= len(source.raw_lines) \
        else ""
    return nolint_rules(
        raw, lambda rule: findings.append(Finding(
            "nolint-reason", source.rel, line,
            f"NOLINT(amalur-{rule}) needs a reason: "
            f"`// NOLINT(amalur-{rule}): <why this is safe>`")))


def check(sources, findings):
    for source in sources:
        if not source.rel.startswith("src/"):
            continue
        _check_pragma_once(source, findings)
        _check_forbidden_includes(source, findings)
        _check_iwyu(source, findings)


def _check_pragma_once(source, findings):
    if not source.is_header:
        return
    if any(re.match(r"\s*#\s*pragma\s+once\b", code)
           for code in source.code_lines):
        return
    for raw in source.raw_lines[:10]:
        if "NOLINT(amalur-pragma-once)" in raw:
            # Reason check rides on the line's own scan below.
            silenced = nolint_rules(raw, lambda rule: findings.append(Finding(
                "nolint-reason", source.rel, 1,
                f"NOLINT(amalur-{rule}) needs a reason: "
                f"`// NOLINT(amalur-{rule}): <why this is safe>`")))
            if "pragma-once" in silenced:
                return
    findings.append(Finding(
        "pragma-once", source.rel, 1,
        "header lacks `#pragma once` (house style: the pragma, not ifndef "
        "guards)"))


def _check_forbidden_includes(source, findings):
    for lineno, kind, path in source.includes:
        if path.endswith(".cc"):
            if "forbidden-include" in _nolint(findings, source, lineno):
                continue
            findings.append(Finding(
                "forbidden-include", source.rel, lineno,
                f'includes the translation unit "{path}": .cc files are '
                "compiled exactly once by the build; include the header"))
            continue
        if kind != "<":
            continue
        owners = OWNED_STD_HEADERS.get(path)
        if owners is None or source.rel in owners:
            continue
        if "forbidden-include" in _nolint(findings, source, lineno):
            continue
        if owners:
            where = " or ".join(owners)
            findings.append(Finding(
                "forbidden-include", source.rel, lineno,
                f"<{path}> may only be included by {where}; use the house "
                "wrapper it defines instead of the raw std facility"))
        else:
            findings.append(Finding(
                "forbidden-include", source.rel, lineno,
                f"<{path}> is banned in src/: all randomness flows through "
                "seeded common::Rng so runs stay bitwise-reproducible"))


def _check_iwyu(source, findings):
    direct = {path for _, kind, path in source.includes if kind == '"'}
    for token, header in sorted(HOUSE_TYPES.items()):
        if source.rel == "src/" + header:
            continue  # the defining header itself
        if header in direct:
            continue
        first_use = None
        for lineno, line in enumerate(source.code_lines, 1):
            if re.search(rf"\b{token}\b", line):
                first_use = lineno
                break
        if first_use is None:
            continue
        if "iwyu" in _nolint(findings, source, first_use):
            continue
        findings.append(Finding(
            "iwyu", source.rel, first_use,
            f"uses {token} but does not include \"{header}\" directly "
            "(transitive includes break when an intermediate header sheds a "
            "dependency)"))
