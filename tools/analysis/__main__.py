#!/usr/bin/env python3
"""amalur architecture conformance analyzer.

Three passes over the repo's own source (driven by its #include graph and
lock-acquisition sites — no compiler needed, so it runs anywhere Python
does):

  layering     src/ modules may only depend along the edges declared in
               tools/analysis/layering.json (the committed architecture);
               cycles and undeclared edges are findings with file:line.
               Also renders deps.json + deps.dot reports (--report-dir).
  lock-order   builds the acquired-while-held graph across every
               common::Mutex/SharedMutex site and fails on cycles (static
               deadlock detection) and on pool dispatch under a lock.
  hygiene      #pragma once in every header, include-what-you-use for the
               curated house types, no .cc includes, owned std headers
               (<mutex>, <random>, <chrono>, ...) only in their owners.

Per-line escapes: `// NOLINT(amalur-<rule>): <reason>` — reason mandatory.

Usage:
  python3 tools/analysis [--root DIR] [--report-dir DIR] [--github]
  python3 tools/analysis --self-test

Exit status: 0 = clean, 1 = findings (or self-test failure).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import hygiene
import layering
import lock_order
from cpp_source import load_tree
from findings import github_mode, report


def run(root, report_dir=None):
    sources = load_tree(root)
    findings = []
    layering.check(root, sources, findings, report_dir=report_dir)
    lock_order.analyze(sources, findings)
    hygiene.check(sources, findings)
    return findings


def self_test():
    """Runs the analyzer over the committed fixtures in
    tools/analysis/fixtures/. Each fixture directory is a miniature repo
    root; its expectations.txt lists `<rule> <count>` lines (rules not
    listed must not fire)."""
    here = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(here, "fixtures")
    if not os.path.isdir(fixtures):
        print("self-test: missing fixture directory", fixtures)
        return 1
    failures = 0
    cases = sorted(d for d in os.listdir(fixtures)
                   if os.path.isdir(os.path.join(fixtures, d)))
    if not cases:
        print("self-test: no fixture cases found")
        return 1
    for case in cases:
        case_root = os.path.join(fixtures, case)
        expected = {}
        with open(os.path.join(case_root, "expectations.txt"),
                  encoding="utf-8") as f:
            for line in f:
                line = line.split("#", 1)[0].strip()
                if not line:
                    continue
                rule, count = line.split()
                expected[rule] = int(count)
        findings = run(case_root)
        got = {}
        for finding in findings:
            got[finding.rule] = got.get(finding.rule, 0) + 1
        if got == expected:
            print(f"self-test [{case}]: OK ({sum(got.values())} findings)")
        else:
            failures += 1
            print(f"self-test [{case}]: FAIL — expected {expected}, "
                  f"got {got}")
            for finding in findings:
                print("   ", finding)
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        prog="tools/analysis", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root to analyze (default: this repo)")
    parser.add_argument("--report-dir", default=None,
                        help="write deps.json + deps.dot here")
    parser.add_argument("--github", action="store_true",
                        help="also emit GitHub problem-matcher annotations "
                             "(auto-enabled under GITHUB_ACTIONS)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture-based self-tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    findings = run(root, report_dir=args.report_dir)
    report(findings, github_mode(args.github))
    if findings:
        print(f"amalur_analysis: {len(findings)} finding(s)")
        return 1
    print("amalur_analysis: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
