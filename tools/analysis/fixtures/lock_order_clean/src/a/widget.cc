#include "a/widget.h"

#include "common/thread_annotations.h"

namespace a {

void Widget::Tick() {
  common::MutexLock lock(mu_);
  common::MutexLock io(io_mu_);
}

void Widget::Tock() {
  common::MutexLock lock(mu_);
  common::MutexLock io(io_mu_);
}

}  // namespace a
