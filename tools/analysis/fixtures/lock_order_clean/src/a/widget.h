#pragma once

#include "common/thread_annotations.h"

namespace a {

class Widget {
 public:
  void Tick();
  void Tock();

 private:
  common::Mutex mu_;
  common::Mutex io_mu_;
};

}  // namespace a
