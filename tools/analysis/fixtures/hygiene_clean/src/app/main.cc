#include <string>

#include "common/span.h"
#include "common/status.h"

namespace app {

common::Status Run(common::Span<const int> xs) {
  // A commented mention of Rng must not demand common/rng.h.
  (void)xs;
  return common::Status();
}

}  // namespace app
