#pragma once

#include <chrono>

namespace common {
class Stopwatch {};
}  // namespace common
