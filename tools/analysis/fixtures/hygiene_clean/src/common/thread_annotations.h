#pragma once

#include <mutex>
#include <shared_mutex>

namespace common {
class Mutex {};
class MutexLock {};
}  // namespace common
