#include "b/other.h"

#include "common/thread_annotations.h"

namespace b {

class Fan {
 public:
  void Go();

 private:
  common::ThreadPool* pool_ = nullptr;
  common::Mutex mu_;
};

void Fan::Go() {
  common::MutexLock lock(mu_);
  pool_->ParallelFor(0, 4, [](size_t i) { (void)i; });  // NOLINT(amalur-pool-under-lock): tasks only read a frozen snapshot
}

}  // namespace b
