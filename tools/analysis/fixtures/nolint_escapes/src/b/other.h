#pragma once

#include <random>  // NOLINT(amalur-forbidden-include)

namespace b {
int Other();
}  // namespace b
