#include "a/gen.h"

#include "b/other.h"  // NOLINT(amalur-layering): legacy bridge, removal tracked in the serving split

namespace a {

int Bridge() {
  common::Status s;  // NOLINT(amalur-iwyu): status.h arrives via gen.h by design here
  (void)s;
  return 0;
}

}  // namespace a
