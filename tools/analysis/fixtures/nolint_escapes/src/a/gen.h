// NOLINT(amalur-pragma-once): generated header, guard emitted by the tool
#ifndef A_GEN_H_
#define A_GEN_H_

namespace a {
int Gen();
}  // namespace a

#endif  // A_GEN_H_
