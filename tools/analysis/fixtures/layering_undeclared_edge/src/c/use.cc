#include "a/util.h"

namespace c {
int Lean() { return a::Twice(3); }
}  // namespace c
