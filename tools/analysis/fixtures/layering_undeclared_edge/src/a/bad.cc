#include "a/util.h"

#include "b/thing.h"

namespace a {
int Backwards() { return 1; }
}  // namespace a
