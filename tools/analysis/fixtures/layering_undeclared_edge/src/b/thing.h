#pragma once

#include "a/util.h"

namespace b {
int Use();
}  // namespace b
