#ifndef APP_LEGACY_H_
#define APP_LEGACY_H_

namespace app {
int Old();
}  // namespace app

#endif  // APP_LEGACY_H_
