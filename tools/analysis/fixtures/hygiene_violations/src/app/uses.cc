#include <mutex>
#include <random>

#include "app/impl.cc"
#include "app/legacy.h"

namespace app {

common::Status Bad() {
  const char* doc = R"(a raw string with a " quote and a Mutex mention)";
  const char* tag = "a quoted SharedMutex is not a use either";
  (void)doc;
  (void)tag;
  return common::Status();
}

}  // namespace app
