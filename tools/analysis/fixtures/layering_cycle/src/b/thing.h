#pragma once

namespace b {
int Use();
}  // namespace b
