#pragma once

namespace a {
int Twice(int x);
}  // namespace a
