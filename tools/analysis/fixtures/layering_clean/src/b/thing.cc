#include "b/thing.h"

#include "a/util.h"

namespace b {
int Use() { return a::Twice(2); }
}  // namespace b
