#include "a/reenter.h"

#include "common/thread_annotations.h"

namespace a {

void Counter::Bump() {
  common::MutexLock lock(mu_);
  Helper();
}

void Counter::Helper() {
  common::MutexLock lock(mu_);
}

}  // namespace a
