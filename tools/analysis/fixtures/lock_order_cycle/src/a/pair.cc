#include "a/pair.h"

#include "common/thread_annotations.h"

namespace a {

void Left::Foo() {
  common::MutexLock lock(mu_);
  partner_->Poke();
}

void Left::Touch() {
  common::MutexLock lock(mu_);
}

void Right::Poke() {
  common::MutexLock lock(mu_);
}

void Right::Drain() {
  common::MutexLock lock(mu_);
  partner_->Touch();
}

}  // namespace a
