#pragma once

#include "common/thread_annotations.h"

namespace a {

class Right;

class Left {
 public:
  void Foo();
  void Touch();

 private:
  Right* partner_ = nullptr;
  common::Mutex mu_;
};

class Right {
 public:
  void Poke();
  void Drain();

 private:
  Left* partner_ = nullptr;
  common::Mutex mu_;
};

}  // namespace a
