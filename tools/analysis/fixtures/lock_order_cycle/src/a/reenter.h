#pragma once

#include "common/thread_annotations.h"

namespace a {

class Counter {
 public:
  void Bump();
  void Helper();

 private:
  common::Mutex mu_;
};

}  // namespace a
