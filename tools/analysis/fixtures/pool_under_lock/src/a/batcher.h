#pragma once

#include "common/thread_annotations.h"

namespace common {
class ThreadPool;
}  // namespace common

namespace a {

class Batcher {
 public:
  void Flush();
  void Rebuild();
  void FanOut();

 private:
  common::ThreadPool* pool_ = nullptr;
  common::Mutex mu_;
};

}  // namespace a
