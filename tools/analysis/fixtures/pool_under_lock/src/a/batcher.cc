#include "a/batcher.h"

#include "common/thread_annotations.h"

namespace a {

void Batcher::Flush() {
  common::MutexLock lock(mu_);
  pool_->ParallelFor(0, 8, [](size_t i) { (void)i; });
}

void Batcher::Rebuild() {
  common::MutexLock lock(mu_);
  FanOut();
}

void Batcher::FanOut() {
  pool_->RunChunks(16, [](size_t lo, size_t hi) { (void)lo; (void)hi; });
}

}  // namespace a
