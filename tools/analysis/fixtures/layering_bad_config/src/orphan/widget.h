#pragma once

namespace orphan {
int Lost();
}  // namespace orphan
