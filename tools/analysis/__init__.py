"""Architecture conformance analyses for the amalur repo.

Run as a directory (`python3 tools/analysis`) — see __main__.py.
"""
