"""Layering-DAG conformance: the committed tools/analysis/layering.json is
the architectural authority on which src/ module may include which.

Rules:
  layering-config  the declaration itself is broken — unreadable JSON, an
                   edge naming an unknown module, a src/ directory missing
                   from "modules", or a cycle in the *declared* graph (the
                   allowlist must stay a DAG or it allows everything).
  layering         a real `#include` crosses module boundaries along an edge
                   the declaration does not allow, or the *actual* include
                   graph contains a module cycle. Findings carry the
                   file:line of the offending include.

Escape hatch: `// NOLINT(amalur-layering): <reason>` on the include line.

The pass also renders the measured graph as deps.json + deps.dot (uploaded
as CI artifacts) so the architecture diagram in the README can never drift
from what the code does.
"""

import json
import os

from cpp_source import nolint_rules
from findings import Finding
from include_graph import extract_edges, find_cycle, module_graph

CONFIG_LOCATIONS = ("tools/analysis/layering.json", "layering.json")


def load_config(root, findings):
    for rel in CONFIG_LOCATIONS:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            continue
        try:
            with open(path, encoding="utf-8") as f:
                return json.load(f), rel
        except (OSError, json.JSONDecodeError) as err:
            findings.append(Finding("layering-config", rel, 0,
                                    f"cannot load layering declaration: {err}"))
            return None, rel
    findings.append(Finding(
        "layering-config", CONFIG_LOCATIONS[0], 0,
        "missing layering declaration: commit the allowed module-dependency "
        "edges (see tools/analysis/layering.json)"))
    return None, None


def validate_config(config, config_rel, src_modules, findings):
    """Checks the declaration itself: known modules, DAG, full coverage."""
    modules = config.get("modules")
    edges = config.get("edges")
    if not isinstance(modules, list) or not isinstance(edges, dict):
        findings.append(Finding(
            "layering-config", config_rel, 0,
            'declaration needs "modules" (list) and "edges" '
            '(module -> [allowed dependencies])'))
        return None
    module_set = set(modules)
    ok = True
    for module, deps in sorted(edges.items()):
        for name in [module] + list(deps):
            if name not in module_set:
                findings.append(Finding(
                    "layering-config", config_rel, 0,
                    f'edge entry "{module}" -> {sorted(deps)} names unknown '
                    f'module "{name}" (not in "modules")'))
                ok = False
    for module in sorted(src_modules - module_set):
        findings.append(Finding(
            "layering-config", config_rel, 0,
            f'src/{module}/ exists but is not declared in "modules" — every '
            "module must have a declared place in the layering"))
        ok = False
    cycle = find_cycle(module_set, {m: set(d) for m, d in edges.items()})
    if cycle:
        findings.append(Finding(
            "layering-config", config_rel, 0,
            "declared layering contains a cycle: " + " -> ".join(cycle) +
            " — the allowlist must be a DAG"))
        ok = False
    return {m: set(edges.get(m, ())) for m in module_set} if ok else None


def check(root, sources, findings, report_dir=None):
    src_modules = {f.rel.split("/")[1] for f in sources
                   if f.rel.startswith("src/") and f.rel.count("/") >= 2}
    config, config_rel = load_config(root, findings)
    if config is None:
        return
    allowed = validate_config(config, config_rel, src_modules, findings)
    if allowed is None:
        return

    edges = extract_edges(sources)
    graph = module_graph(edges)
    by_file = {f.rel: f for f in sources}

    actual = {}
    for (a, b), includes in sorted(graph.items()):
        actual.setdefault(a, set()).add(b)
        if b in allowed.get(a, ()):
            continue
        for include in includes:
            raw = by_file[include.from_file].raw_lines[include.line - 1]
            silenced = nolint_rules(
                raw, lambda rule, inc=include: findings.append(Finding(
                    "nolint-reason", inc.from_file, inc.line,
                    f"NOLINT(amalur-{rule}) needs a reason: "
                    f"`// NOLINT(amalur-{rule}): <why this is safe>`")))
            if "layering" in silenced:
                continue
            findings.append(Finding(
                "layering", include.from_file, include.line,
                f'include of "{include.to_path}" creates the undeclared '
                f"module dependency {a} -> {b}; either the include is an "
                f"architecture violation, or the edge belongs in "
                f"{config_rel} with a written justification"))

    cycle = find_cycle(set(actual) | {b for bs in actual.values() for b in bs},
                       actual)
    if cycle:
        findings.append(Finding(
            "layering", "src", 0,
            "module include graph contains a cycle: " + " -> ".join(cycle) +
            " — the build only stays layerable while this graph is a DAG"))

    if report_dir:
        write_reports(report_dir, config, graph, src_modules)


def write_reports(report_dir, config, graph, src_modules):
    """deps.json (machine-readable) + deps.dot (GraphViz) for CI artifacts."""
    os.makedirs(report_dir, exist_ok=True)
    module_edges = [
        {"from": a, "to": b, "includes": len(includes)}
        for (a, b), includes in sorted(graph.items())]
    file_edges = [
        {"from": e.from_file, "line": e.line, "to": "src/" + e.to_path}
        for includes in graph.values() for e in includes]
    file_edges.sort(key=lambda d: (d["from"], d["line"]))
    with open(os.path.join(report_dir, "deps.json"), "w",
              encoding="utf-8") as f:
        json.dump({
            "modules": sorted(src_modules),
            "declared_edges": {m: sorted(d) for m, d in
                               sorted(config.get("edges", {}).items())},
            "module_edges": module_edges,
            "file_edges": file_edges,
        }, f, indent=2)
        f.write("\n")
    with open(os.path.join(report_dir, "deps.dot"), "w",
              encoding="utf-8") as f:
        f.write(render_dot(module_edges, sorted(src_modules)))


def render_dot(module_edges, modules):
    lines = [
        "// Generated by tools/analysis (layering pass). Module-level include",
        "// graph of src/; edge labels count #include sites.",
        "digraph amalur_modules {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for module in modules:
        lines.append(f"  {module};")
    for edge in module_edges:
        lines.append(f'  {edge["from"]} -> {edge["to"]} '
                     f'[label="{edge["includes"]}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
