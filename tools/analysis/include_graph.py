"""Include-graph extraction for src/.

Every `#include "module/header.h"` in a src/ file is one edge. The graph is
file-level (with line numbers, so layering findings are clickable) and rolls
up to module-level (module = first path component under src/), which is what
the layering check and the DOT/deps.json reports consume.
"""


class IncludeEdge:
    def __init__(self, from_file, line, to_path):
        self.from_file = from_file  # e.g. "src/core/amalur.cc"
        self.line = line
        self.to_path = to_path      # e.g. "cost/amalur_cost_model.h"

    @property
    def from_module(self):
        parts = self.from_file.split("/")
        return parts[1] if len(parts) > 2 and parts[0] == "src" else None

    @property
    def to_module(self):
        return self.to_path.split("/")[0] if "/" in self.to_path else None


def extract_edges(sources):
    """All quoted-include edges from the given src/ SourceFiles. System
    includes (<...>) are not part of the layering graph — the hygiene pass
    owns those."""
    edges = []
    for source in sources:
        if not source.rel.startswith("src/"):
            continue
        for lineno, kind, path in source.includes:
            if kind != '"':
                continue
            edges.append(IncludeEdge(source.rel, lineno, path))
    return edges


def module_graph(edges):
    """Rolls file edges up to {(from_module, to_module): [IncludeEdge...]},
    self-edges (intra-module includes) excluded."""
    graph = {}
    for edge in edges:
        a, b = edge.from_module, edge.to_module
        if a is None or b is None or a == b:
            continue
        graph.setdefault((a, b), []).append(edge)
    return graph


def find_cycle(nodes, successors):
    """Returns one cycle as a list of nodes [n0, n1, ..., n0], or None.
    Deterministic: nodes and successors are visited in sorted order."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for succ in sorted(successors.get(node, ())):
            if succ not in color:
                continue
            if color[succ] == GRAY:
                return stack[stack.index(succ):] + [succ]
            if color[succ] == WHITE:
                cycle = visit(succ)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(nodes):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None
