"""Shared C++ source lexing for the amalur house tools.

Both tools/amalur_lint.py and the tools/analysis passes scan C++ by line with
regexes; everything they share lives here so the two stay in lockstep:

  * strip_comments — blanks comments and string/char literals (raw strings
    included) while preserving line structure, so token scans never fire on
    quoted or commented mentions.
  * NOLINT handling — `// NOLINT(amalur-<rule>): <reason>` per-line escapes,
    with the reason mandatory (a bare NOLINT is itself a finding).
  * SourceFile — one loaded file: raw lines + stripped lines + include list.
"""

import os
import re

NOLINT_RE = re.compile(r"//\s*NOLINT\(amalur-([\w-]+)\)(:?)\s*(\S?)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

_RAW_PREFIXES = ("R", "u8R", "uR", "UR", "LR")


def _raw_string_at(text, i):
    """If text[i] == '"' opens a raw string literal, returns the prefix start
    index, else None. Handles the R / u8R / uR / UR / LR prefixes."""
    for prefix in _RAW_PREFIXES:
        start = i - len(prefix)
        if start < 0 or text[start:i] != prefix:
            continue
        # The prefix must not be the tail of a longer identifier (e.g. the
        # 'R' in `FooR"..."` is part of the name, not a raw-string prefix).
        if start > 0 and (text[start - 1].isalnum() or text[start - 1] == "_"):
            continue
        return start
    return None


def strip_comments(text):
    """Blanks out // and /* */ comments and string/char literals — including
    raw string literals R"delim(...)delim" — preserving line structure, so a
    commented or quoted mention of a forbidden token does not trip a rule.
    NOLINT directives are read from the raw line instead."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                raw_start = _raw_string_at(text, i)
                if raw_start is not None:
                    # Raw string literal: R"delim( ... )delim". The closing
                    # sequence is the only terminator — quotes and escapes
                    # inside are literal text, so the plain `str` state would
                    # desync on them and mask (or fabricate) findings on the
                    # lines after. Blank the body, keep newlines.
                    delim_end = text.find("(", i + 1)
                    if delim_end == -1 or delim_end - (i + 1) > 16:
                        # Malformed; treat as an ordinary string open.
                        state = "str"
                        out.append(" ")
                        i += 1
                        continue
                    delim = text[i + 1:delim_end]
                    closer = ")" + delim + '"'
                    end = text.find(closer, delim_end + 1)
                    end = n if end == -1 else end + len(closer)
                    for ch in text[i:end]:
                        out.append(ch if ch == "\n" else " ")
                    i = end
                    continue
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def nolint_rules(raw_line, report_missing_reason):
    """Returns the set of rules silenced on this raw line. For every NOLINT
    lacking a reason, calls report_missing_reason(rule)."""
    silenced = set()
    for m in NOLINT_RE.finditer(raw_line):
        rule, colon, reason_head = m.group(1), m.group(2), m.group(3)
        if not colon or not reason_head:
            report_missing_reason(rule)
        silenced.add(rule)
    return silenced


class SourceFile:
    """One C++ source file, loaded once and shared by every pass."""

    def __init__(self, root, rel):
        self.rel = rel  # repo-relative, forward slashes
        with open(os.path.join(root, rel), encoding="utf-8",
                  errors="replace") as f:
            self.text = f.read()
        self.raw_lines = self.text.splitlines()
        self.stripped = strip_comments(self.text)
        self.code_lines = self.stripped.splitlines()
        # [(lineno, kind, path)] where kind is '"' for quoted, '<' for system.
        # Matched against the RAW lines: stripping blanks the quoted path as
        # a string literal. A commented-out include cannot match (the comment
        # marker precedes the '#').
        self.includes = []
        for lineno, raw in enumerate(self.raw_lines, 1):
            m = INCLUDE_RE.match(raw)
            if m:
                self.includes.append((lineno, m.group(1), m.group(2)))

    @property
    def is_header(self):
        return self.rel.endswith(".h")


def load_tree(root, subdirs=("src",), extensions=(".h", ".cc")):
    """Loads every matching source file under root/<subdir>, sorted by path."""
    files = []
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(tuple(extensions)):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                files.append(SourceFile(root, rel.replace(os.sep, "/")))
    files.sort(key=lambda f: f.rel)
    return files
