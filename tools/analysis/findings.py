"""Finding type and reporting for the architecture conformance analyses.

Findings print as `path:line: [amalur-<rule>] message` for humans and,
when GitHub problem-matcher output is enabled (--github or GITHUB_ACTIONS),
additionally as `::error file=...,line=...::...` workflow commands so CI
violations annotate the PR diff directly.
"""

import os


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [amalur-{self.rule}] {self.message}"

    def github_annotation(self):
        # Workflow-command escaping: the message ends the command at a bare
        # newline, and %/CR/LF have percent escapes.
        msg = (f"[amalur-{self.rule}] {self.message}"
               .replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A"))
        line = self.line if self.line else 1
        return f"::error file={self.path},line={line}::{msg}"


def github_mode(flag):
    """Problem-matcher output is on when asked for explicitly or when running
    inside a GitHub Actions job."""
    return flag or os.environ.get("GITHUB_ACTIONS") == "true"


def report(findings, use_github):
    findings = sorted(findings, key=Finding.sort_key)
    for finding in findings:
        print(finding)
        if use_github:
            print(finding.github_annotation())
    return findings
