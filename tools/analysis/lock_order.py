"""Static lock-order analysis over the annotated lock wrappers.

The house locking vocabulary is small and uniform — `common::Mutex` /
`common::SharedMutex` members, RAII `MutexLock` / `SharedLock` acquisition
sites, `ParallelFor`/`ParallelForChunks`/`RunChunks` for pool dispatch — so
the acquired-while-held relation is statically recoverable without a real
C++ frontend:

  1. a scope parser (brace matching over comment/string-stripped text) finds
     every class and function definition;
  2. class bodies yield the mutex-member index (`Class::member`);
  3. function bodies yield ordered events — RAII acquisitions (released when
     their enclosing block closes) and calls;
  4. call targets resolve against the function index (qualified calls
     exactly, unqualified ones by unique simple name, same-name overrides
     conservatively unioned — that is what catches a base-class method that
     locks being called under a derived-class lock);
  5. per-function acquisition summaries close over the call graph to a
     fixpoint, then a replay of each body emits `held -> acquired` edges.

Rules:
  lock-order      the acquired-while-held graph has a cycle (including the
                  length-1 cycle: re-acquiring a held non-recursive mutex).
                  Each edge in the reported cycle carries its file:line.
  pool-under-lock dispatching onto the worker pool while holding any lock:
                  pool workers may block on the same lock (or, worse, the
                  pool's own submit path), so this is a deadlock-in-waiting
                  even when today's callbacks happen not to lock.

Escapes: `// NOLINT(amalur-lock-order): <reason>` /
`// NOLINT(amalur-pool-under-lock): <reason>` on the acquisition or call
line.
"""

import bisect
import re

from cpp_source import nolint_rules
from findings import Finding
from include_graph import find_cycle

EXEMPT_FILES = (
    # The primitive layer defines the wrappers themselves; everything it does
    # with std primitives is below the vocabulary this analysis speaks.
    "src/common/thread_annotations.h",
)

DISPATCH_NAMES = ("ParallelFor", "ParallelForChunks", "RunChunks")
POOL = "<worker-pool>"

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "decltype", "operator", "throw", "new", "delete",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "static_assert", "defined", "noexcept", "alignas",
}
SKIP_QUALIFIERS = {"std", "chrono", "this_thread", "numeric_limits"}

MEMBER_RE = re.compile(
    r"\b(?:common::)?(Mutex|SharedMutex)\s+(\w+)\s*(?:GUARDED_BY\([^)]*\)\s*)?;")
ACQ_RE = re.compile(
    r"\b(?:common::)?(MutexLock|SharedLock)\s+\w+\s*\(\s*([^()]+?)\s*\)")
CALL_RE = re.compile(
    r"((?:\w+\s*::\s*)*)([A-Za-z_~]\w*)\s*(?:<[^<>;(){}]*>)?\s*\(")
FUNC_NAME_RE = re.compile(r"([A-Za-z_~]\w*(?:::~?[A-Za-z_]\w*)*)\s*\(")
PREPROC_RE = re.compile(r"^\s*#")


class Scope:
    def __init__(self, kind, name, parent, open_pos):
        self.kind = kind      # namespace | class | function | block
        self.name = name
        self.parent = parent
        self.open_pos = open_pos
        self.close_pos = None
        self.children = []
        if parent is not None:
            parent.children.append(self)

    def enclosing(self, kind):
        scope = self
        while scope is not None:
            if scope.kind == kind:
                return scope
            scope = scope.parent
        return None


def _blank_preprocessor(stripped):
    """Blanks preprocessor directives (with their backslash continuations):
    macro bodies are not statements of any scope, and their braces/parens
    would desync the scope parser."""
    out = []
    in_directive = False
    for line in stripped.split("\n"):
        if in_directive or PREPROC_RE.match(line):
            in_directive = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            out.append(line)
    return "\n".join(out)


def _classify_head(head):
    head = head.strip()
    if not head:
        return ("block", None)
    if head.startswith("namespace"):
        tokens = re.findall(r"[\w:]+", head)
        return ("namespace", tokens[1] if len(tokens) > 1 else "<anon>")
    if re.search(r"\benum\b", head):
        return ("block", None)
    if re.search(r"\b(?:class|struct|union)\b", head):
        # Drop the base-clause (single ':' — '::' survives), then the class
        # name is the last identifier token that is not a keyword.
        decl = re.split(r"(?<!:):(?!:)", head)[0]
        tokens = [t for t in re.findall(r"[A-Za-z_~][\w:]*", decl)
                  if t not in ("class", "struct", "union", "final",
                               "template", "typename", "alignas")]
        if tokens:
            return ("class", tokens[-1])
        return ("block", None)
    if head.endswith("=") or head.endswith(","):
        return ("block", None)  # brace initializer
    m = FUNC_NAME_RE.search(head)
    if m and m.group(1).split("::")[-1] not in CONTROL_KEYWORDS \
            and m.group(1).split("::")[0] not in CONTROL_KEYWORDS:
        return ("function", m.group(1))
    return ("block", None)


def parse_scopes(stripped):
    """Brace-matching scope parser over stripped (and directive-blanked)
    text. Returns (root_scope, blanked_text)."""
    text = _blank_preprocessor(stripped)
    root = Scope("namespace", "<file>", None, 0)
    current = root
    head_start = 0
    paren_depth = 0
    for i, c in enumerate(text):
        if c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
        elif c == ";" and paren_depth == 0:
            head_start = i + 1
        elif c == "{" and paren_depth == 0:
            kind, name = _classify_head(text[head_start:i])
            current = Scope(kind, name, current, i)
            head_start = i + 1
        elif c == "}" and paren_depth == 0:
            current.close_pos = i
            if current.parent is not None:
                current = current.parent
            head_start = i + 1
    return root, text


def _walk(scope):
    yield scope
    for child in scope.children:
        yield from _walk(child)


def _span_blanked(text, scope):
    """The body of `scope` with every nested class/function sub-scope blanked
    (those have their own owners), newlines preserved."""
    start = scope.open_pos + 1
    end = scope.close_pos if scope.close_pos is not None else len(text)
    chars = list(text[start:end])
    for child in scope.children:
        if child.kind not in ("class", "function"):
            continue
        c_end = child.close_pos if child.close_pos is not None else end
        for j in range(child.open_pos - start, min(c_end + 1 - start,
                                                   len(chars))):
            if chars[j] != "\n":
                chars[j] = " "
    return start, "".join(chars)


class FunctionInfo:
    def __init__(self, qualified, rel):
        self.qualified = qualified  # Class::Name or bare name
        self.rel = rel
        self.events = []   # ordered: ("acq", node, line) | ("call", qual, name, line, held_tuple)
        self.direct_acquires = set()


def _line_of(line_starts, pos):
    # line_starts holds the offset of every '\n'; pos after k of them is on
    # 1-indexed line k+1.
    return bisect.bisect_right(line_starts, pos) + 1


def _resolve_lock_expr(expr, class_name, members, member_owners):
    """Maps a MutexLock argument expression to a canonical lock node."""
    expr = expr.replace("&", "").replace("*", "").strip()
    member = re.split(r"->|\.", expr)[-1].strip()
    if not re.fullmatch(r"\w+", member):
        return None
    if class_name and (class_name, member) in members:
        return f"{class_name}::{member}"
    owners = member_owners.get(member, [])
    if len(owners) == 1:
        return f"{owners[0]}::{member}"
    # Ambiguous or unknown: keep it distinct per enclosing context so
    # unrelated locks never merge into one node (which could fabricate
    # cycles), but same-context uses still line up.
    scope = class_name if class_name else "<local>"
    return f"{scope}::{member}"


def analyze(sources, findings):
    sources = [s for s in sources
               if s.rel.startswith("src/") and s.rel not in EXEMPT_FILES]

    members = {}        # (class, member) -> kind
    member_owners = {}  # member -> [class...]
    functions = {}      # qualified -> FunctionInfo (events merged on overload)
    by_simple = {}      # simple name -> set of qualified names
    parsed = []

    for source in sources:
        root, text = parse_scopes(source.stripped)
        line_starts = [m.start() for m in re.finditer(r"\n", text)]
        parsed.append((source, root, text, line_starts))
        for scope in _walk(root):
            if scope.kind != "class" or scope.name is None:
                continue
            _, body = _span_blanked(text, scope)
            for m in MEMBER_RE.finditer(body):
                members[(scope.name, m.group(2))] = m.group(1)
                member_owners.setdefault(m.group(2), [])
                if scope.name not in member_owners[m.group(2)]:
                    member_owners[m.group(2)].append(scope.name)

    for source, root, text, line_starts in parsed:
        for scope in _walk(root):
            if scope.kind != "function" or scope.name is None:
                continue
            name = scope.name
            if "::" in name:
                class_name, simple = name.rsplit("::", 1)
                class_name = class_name.split("::")[-1] \
                    if "::" in class_name else class_name
                qualified = f"{class_name}::{simple}"
            else:
                enclosing = scope.parent.enclosing("class") \
                    if scope.parent else None
                class_name = enclosing.name if enclosing else None
                simple = name
                qualified = f"{class_name}::{simple}" if class_name else simple
            info = functions.setdefault(qualified,
                                        FunctionInfo(qualified, source.rel))
            by_simple.setdefault(simple, set()).add(qualified)

            start, body = _span_blanked(text, scope)
            tokens = []
            acq_spans = []
            for m in ACQ_RE.finditer(body):
                node = _resolve_lock_expr(m.group(2), class_name, members,
                                          member_owners)
                if node:
                    tokens.append((m.start(), "acq", node))
                acq_spans.append((m.start(), m.end()))
            call_body = list(body)
            for a, b in acq_spans:
                for j in range(a, b):
                    if call_body[j] != "\n":
                        call_body[j] = " "
            call_body = "".join(call_body)
            for m in CALL_RE.finditer(call_body):
                qualifier = m.group(1).replace(" ", "").rstrip(":")
                callee = m.group(2)
                if callee in CONTROL_KEYWORDS:
                    continue
                if qualifier.split("::")[0] in SKIP_QUALIFIERS:
                    continue
                tokens.append((m.start(), "call", (qualifier, callee)))
            for j, c in enumerate(body):
                if c in "{}":
                    tokens.append((j, c, None))
            tokens.sort(key=lambda t: t[0])

            depth = 0
            held = []  # (node, depth, line)
            for pos, kind, payload in tokens:
                line = _line_of(line_starts, start + pos)
                if kind == "{":
                    depth += 1
                elif kind == "}":
                    depth -= 1
                    while held and held[-1][1] > depth:
                        held.pop()
                elif kind == "acq":
                    info.events.append(
                        ("acq", payload, line,
                         tuple(h[0] for h in held)))
                    info.direct_acquires.add(payload)
                    held.append((payload, depth, line))
                elif kind == "call":
                    info.events.append(
                        ("call", payload, line, tuple(h[0] for h in held)))

    def resolve_call(qualifier, callee):
        if qualifier:
            tail = qualifier.split("::")[-1]
            exact = f"{tail}::{callee}"
            if exact in functions:
                return [exact]
        if callee in by_simple:
            return sorted(by_simple[callee])
        return []

    # Fixpoint: transitive acquisition summaries over the call graph.
    closure = {q: set(f.direct_acquires) for q, f in functions.items()}
    changed = True
    while changed:
        changed = False
        for q, f in functions.items():
            for kind, payload, _, _ in f.events:
                if kind != "call":
                    continue
                qualifier, callee = payload
                extra = {POOL} if callee in DISPATCH_NAMES else set()
                for target in resolve_call(qualifier, callee):
                    extra |= closure[target]
                if not extra <= closure[q]:
                    closure[q] |= extra
                    changed = True

    # Replay every body once more to materialize held -> acquired edges.
    edges = {}  # (held, acquired) -> (rel, line, note)
    reported = set()
    raw_by_rel = {s.rel: s.raw_lines for s in sources}

    def silenced(rule, rel, line):
        raw = raw_by_rel[rel][line - 1] if 0 < line <= len(raw_by_rel[rel]) \
            else ""
        return rule in nolint_rules(
            raw, lambda r: _report_nolint(findings, reported, r, rel, line))

    for q, f in functions.items():
        for kind, payload, line, held in f.events:
            if not held:
                continue
            if kind == "acq":
                acquired = {payload}
                note = ""
            else:
                qualifier, callee = payload
                acquired = set()
                for target in resolve_call(qualifier, callee):
                    acquired |= closure[target]
                if callee in DISPATCH_NAMES or POOL in acquired:
                    acquired.discard(POOL)
                    if not silenced("pool-under-lock", f.rel, line):
                        key = ("pool-under-lock", f.rel, line)
                        if key not in reported:
                            reported.add(key)
                            findings.append(Finding(
                                "pool-under-lock", f.rel, line,
                                f"{q} dispatches onto the worker pool (via "
                                f"{callee}) while holding "
                                f"{', '.join(sorted(held))}: pool workers "
                                "may block on the same lock, deadlocking "
                                "the dispatch"))
                    continue
                acquired.discard(POOL)
                note = f" (via call to {callee})"
            for h in held:
                for a in acquired:
                    if silenced("lock-order", f.rel, line):
                        continue
                    edges.setdefault((h, a), (f.rel, line, note))

    for (h, a), (rel, line, note) in sorted(edges.items()):
        if h == a:
            key = ("lock-order", rel, line)
            if key not in reported:
                reported.add(key)
                findings.append(Finding(
                    "lock-order", rel, line,
                    f"{a} is acquired while already held{note}: the wrappers "
                    "are non-recursive, this self-deadlocks"))

    nodes = {n for e in edges for n in e}
    successors = {}
    for h, a in edges:
        if h != a:
            successors.setdefault(h, set()).add(a)
    cycle = find_cycle(nodes, successors)
    if cycle:
        sites = []
        for h, a in zip(cycle, cycle[1:]):
            rel, line, note = edges[(h, a)]
            sites.append(f"{h} -> {a} at {rel}:{line}{note}")
        rel, line, _ = edges[(cycle[0], cycle[1])]
        findings.append(Finding(
            "lock-order", rel, line,
            "lock-order cycle (potential deadlock): " +
            "; ".join(sites) +
            " — pick one global order for these locks"))

    return edges


def _report_nolint(findings, reported, rule, rel, line):
    key = ("nolint-reason", rel, line, rule)
    if key in reported:
        return
    reported.add(key)
    findings.append(Finding(
        "nolint-reason", rel, line,
        f"NOLINT(amalur-{rule}) needs a reason: "
        f"`// NOLINT(amalur-{rule}): <why this is safe>`"))
