// Federated round-loop experiment (§V): communication volume and wall time
// of the n-ary protocols as a function of silo count. Vertical FLR runs
// with N feature-holding parties under plaintext and Paillier wires (the
// §V.B encryption blow-up shows up directly in the byte column — each
// ciphertext travels at its 16-byte serialized size); horizontal FedAvg
// runs with one participant per shard under plain and secure aggregation.
// Alongside the human-readable table it emits machine-readable
// `BENCH_federated.json` (protocol, wires, silos, rounds, bytes, seconds)
// so the communication trajectory can be tracked across commits.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "federated/hfl.h"
#include "federated/vfl.h"

namespace {

using namespace amalur;

struct Measurement {
  std::string protocol;  // "vfl" | "hfl"
  std::string wires;     // "plaintext" | "paillier" | "plain" | "secure"
  size_t silos = 0;
  size_t rounds = 0;
  size_t bytes = 0;
  size_t messages = 0;
  double seconds = 0.0;
  double final_loss = 0.0;
};

/// N row-aligned feature blocks with a planted joint linear model.
std::vector<federated::VflParty> MakeVflParties(size_t silos, size_t rows,
                                                size_t features_each,
                                                uint64_t seed,
                                                la::DenseMatrix* labels) {
  Rng rng(seed);
  std::vector<federated::VflParty> parties;
  *labels = la::DenseMatrix(rows, 1);
  for (size_t k = 0; k < silos; ++k) {
    federated::VflParty party;
    party.x = la::DenseMatrix::RandomGaussian(rows, features_each, &rng);
    la::DenseMatrix w = la::DenseMatrix::RandomGaussian(features_each, 1, &rng);
    labels->AddInPlace(party.x.Multiply(w));
    parties.push_back(std::move(party));
  }
  for (size_t i = 0; i < rows; ++i) {
    labels->At(i, 0) += 0.05 * rng.NextGaussian();
  }
  return parties;
}

Measurement RunVfl(size_t silos, federated::VflPrivacy privacy, size_t rounds,
                   size_t rows) {
  la::DenseMatrix labels;
  std::vector<federated::VflParty> parties =
      MakeVflParties(silos, rows, 3, 100 + silos, &labels);
  federated::VflOptions options;
  options.iterations = rounds;
  options.learning_rate = 0.1;
  options.privacy = privacy;
  federated::MessageBus bus;
  Stopwatch watch;
  auto result = federated::TrainVerticalFlrNary(parties, labels, options, &bus);
  const double seconds = watch.ElapsedSeconds();
  AMALUR_CHECK(result.ok()) << result.status();
  return {"vfl",
          privacy == federated::VflPrivacy::kPaillier ? "paillier"
                                                      : "plaintext",
          silos,
          rounds,
          result->bytes_transferred,
          result->messages,
          seconds,
          result->loss_history.back()};
}

Measurement RunHfl(size_t shards, bool secure, size_t rounds,
                   size_t rows_each) {
  Rng rng(200 + shards);
  const size_t features = 6;
  la::DenseMatrix w_true = la::DenseMatrix::RandomGaussian(features, 1, &rng);
  std::vector<federated::HflPartition> partitions;
  for (size_t p = 0; p < shards; ++p) {
    federated::HflPartition partition{
        la::DenseMatrix::RandomGaussian(rows_each, features, &rng),
        la::DenseMatrix(rows_each, 1)};
    partition.labels = partition.features.Multiply(w_true);
    for (size_t i = 0; i < rows_each; ++i) {
      partition.labels.At(i, 0) += 0.05 * rng.NextGaussian();
    }
    partitions.push_back(std::move(partition));
  }
  federated::HflOptions options;
  options.rounds = rounds;
  options.local_epochs = 1;
  options.learning_rate = 0.2;
  options.secure_aggregation = secure;
  federated::MessageBus bus;
  Stopwatch watch;
  auto result = federated::TrainHorizontalFlr(partitions, options, &bus);
  const double seconds = watch.ElapsedSeconds();
  AMALUR_CHECK(result.ok()) << result.status();
  return {"hfl",
          secure ? "secure" : "plain",
          shards,
          rounds,
          result->bytes_transferred,
          result->messages,
          seconds,
          result->loss_history.back()};
}

void WriteJson(const std::vector<Measurement>& measurements,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(out,
                 "  {\"protocol\": \"%s\", \"wires\": \"%s\", "
                 "\"silos\": %zu, \"rounds\": %zu, \"bytes\": %zu, "
                 "\"messages\": %zu, \"seconds\": %.6f, "
                 "\"final_loss\": %.6f}%s\n",
                 m.protocol.c_str(), m.wires.c_str(), m.silos, m.rounds,
                 m.bytes, m.messages, m.seconds, m.final_loss,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
}

void PrintRow(const Measurement& m) {
  std::printf("%5s %10s %6zu %7zu %12zu %9zu %9.3f %10.4f\n",
              m.protocol.c_str(), m.wires.c_str(), m.silos, m.rounds, m.bytes,
              m.messages, m.seconds, m.final_loss);
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  std::printf("=== §V: federated rounds vs silo count ===%s\n\n",
              smoke ? " (SMOKE MODE — sizes scaled down)" : "");
  std::printf("%5s %10s %6s %7s %12s %9s %9s %10s\n", "proto", "wires",
              "silos", "rounds", "bytes", "msgs", "time(s)", "loss");

  std::vector<Measurement> measurements;
  const size_t kVflRounds = smoke ? 5 : 25;
  const size_t kVflRows = smoke ? 60 : 400;
  for (size_t silos : {2, 3, 5, 8}) {
    measurements.push_back(RunVfl(silos, federated::VflPrivacy::kPlaintext,
                                  kVflRounds, kVflRows));
    PrintRow(measurements.back());
  }
  // Paillier at smaller sizes: homomorphic transposes dominate wall time.
  for (size_t silos : {2, 3, 5}) {
    measurements.push_back(RunVfl(silos, federated::VflPrivacy::kPaillier,
                                  smoke ? 2 : 5, smoke ? 20 : 60));
    PrintRow(measurements.back());
  }
  const size_t kHflRounds = smoke ? 6 : 30;
  const size_t kHflRows = smoke ? 50 : 300;
  for (size_t shards : {2, 4, 8}) {
    for (bool secure : {false, true}) {
      measurements.push_back(RunHfl(shards, secure, kHflRounds, kHflRows));
      PrintRow(measurements.back());
    }
  }

  WriteJson(measurements, "BENCH_federated.json");
  std::printf(
      "\nWrote BENCH_federated.json (%zu measurements).\n"
      "Expected shape: vertical bytes grow linearly in silo count (N-1\n"
      "partial predictions + N-1 residual broadcasts per round); Paillier\n"
      "wires cost 2x bytes per value and orders of magnitude more compute;\n"
      "secure HFL aggregation adds the share-routing quadratic term.\n",
      measurements.size());
  return 0;
}
