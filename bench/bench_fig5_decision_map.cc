// Reproduces paper Figure 5 empirically: the factorize/materialize decision
// plane over tuple ratio (join fan-out) x feature ratio (dimension width).
// For every grid cell the harness measures both strategies and prints the
// measured winner plus both estimators' predictions, then summarizes the
// three areas: I (clearly factorize), II (clearly materialize) and III (the
// contested band where the heuristic of [27] loses cases the DI-metadata
// cost model recovers).

#include <cstdio>

#include "bench/bench_util.h"
#include "cost/amalur_cost_model.h"
#include "cost/morpheus_heuristic.h"

namespace {

using namespace amalur;

char Letter(cost::Strategy s) {
  return s == cost::Strategy::kFactorize ? 'F' : 'M';
}

}  // namespace

int main() {
  const size_t kIterations = 20;
  const size_t kOtherRows = 2000;
  const double tuple_ratios[] = {1, 2, 3, 5, 8, 12};
  const double feature_ratios[] = {1, 2, 5, 10, 20};

  cost::MorpheusHeuristic morpheus;
  cost::AmalurCostModelOptions options;
  options.training_iterations = static_cast<double>(kIterations);
  cost::AmalurCostModel amalur_model(options);

  std::printf("=== Figure 5: decision areas over TR x FR ===\n");
  std::printf("(left join, rS2=%zu, cS1=2; cell = measured/morpheus/amalur)\n\n",
              kOtherRows);
  std::printf("%8s |", "TR \\ FR");
  for (double fr : feature_ratios) std::printf("  %5.0f  |", fr);
  std::printf("\n---------+");
  for (size_t i = 0; i < std::size(feature_ratios); ++i) {
    std::printf("---------+");
  }
  std::printf("\n");

  int morpheus_correct = 0, amalur_correct = 0, total = 0;
  int area_one = 0, area_two = 0, area_three = 0;
  for (double tr : tuple_ratios) {
    std::printf("%8.0f |", tr);
    for (double fr : feature_ratios) {
      rel::SiloPairSpec spec;
      spec.kind = rel::JoinKind::kLeftJoin;
      spec.other_rows = kOtherRows;
      spec.base_rows = static_cast<size_t>(tr * kOtherRows);
      spec.base_features = 2;
      spec.other_features = static_cast<size_t>(fr * 2);
      spec.seed = static_cast<uint64_t>(tr * 1000 + fr);
      rel::SiloPair pair = rel::GenerateSiloPair(spec);
      auto metadata = factorized::DerivePairMetadata(pair);
      AMALUR_CHECK(metadata.ok()) << metadata.status();
      const cost::CostFeatures features =
          cost::CostFeatures::FromMetadata(*metadata);

      const bench::StrategyTiming timing =
          bench::MeasureTraining(*metadata, kIterations);
      const cost::Strategy measured = timing.Winner();
      const cost::Strategy morpheus_says = morpheus.Decide(features);
      const cost::Strategy amalur_says = amalur_model.Decide(features);
      std::printf("  %c/%c/%c  |", Letter(measured), Letter(morpheus_says),
                  Letter(amalur_says));

      total += 1;
      morpheus_correct += morpheus_says == measured ? 1 : 0;
      amalur_correct += amalur_says == measured ? 1 : 0;
      // Areas: both estimators agree with the measurement -> easy area
      // (I for factorize, II for materialize); disagreement -> area III.
      if (morpheus_says == measured && amalur_says == measured) {
        (measured == cost::Strategy::kFactorize ? area_one : area_two) += 1;
      } else {
        area_three += 1;
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nAccuracy vs measured winner: Morpheus %.0f%%, Amalur %.0f%% "
      "(%d cells)\n",
      100.0 * morpheus_correct / total, 100.0 * amalur_correct / total, total);
  std::printf(
      "Decision areas: I (easy factorize) = %d, II (easy materialize) = %d, "
      "III (contested) = %d\n",
      area_one, area_two, area_three);
  return 0;
}
