// Reproduces paper Figure 5 empirically: the factorize/materialize decision
// plane over tuple ratio (join fan-out) x feature ratio (dimension width).
// For every grid cell the harness measures both strategies and prints the
// measured winner plus both estimators' predictions, then summarizes the
// three areas: I (clearly factorize), II (clearly materialize) and III (the
// contested band where the heuristic of [27] loses cases the DI-metadata
// cost model recovers).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cost/amalur_cost_model.h"
#include "cost/calibrator.h"
#include "cost/morpheus_heuristic.h"
#include "cost/observation_log.h"

namespace {

using namespace amalur;

char Letter(cost::Strategy s) {
  return s == cost::Strategy::kFactorize ? 'F' : 'M';
}

/// One measured grid cell, kept so the calibrated model can re-predict the
/// whole plane without re-measuring.
struct Cell {
  cost::CostFeatures features;
  cost::Strategy measured = cost::Strategy::kMaterialize;
};

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t kIterations = smoke ? 5 : 20;
  const size_t kAltIterations = smoke ? 2 : 5;
  const size_t kOtherRows = smoke ? 200 : 2000;
  const size_t kRepeats = smoke ? 1 : 3;
  const double tuple_ratios[] = {1, 2, 3, 5, 8, 12};
  const double feature_ratios[] = {1, 2, 5, 10, 20};

  cost::MorpheusHeuristic morpheus;
  cost::AmalurCostModelOptions options;
  options.training_iterations = static_cast<double>(kIterations);
  cost::AmalurCostModel amalur_model(options);

  std::printf("=== Figure 5: decision areas over TR x FR ===\n");
  std::printf("(left join, rS2=%zu, cS1=2; cell = measured/morpheus/amalur%s)\n\n",
              kOtherRows, smoke ? "; SMOKE MODE — sizes scaled down" : "");
  std::printf("%8s |", "TR \\ FR");
  for (double fr : feature_ratios) std::printf("  %5.0f  |", fr);
  std::printf("\n---------+");
  for (size_t i = 0; i < std::size(feature_ratios); ++i) {
    std::printf("---------+");
  }
  std::printf("\n");

  std::vector<Cell> cells;
  int morpheus_correct = 0, amalur_correct = 0, total = 0;
  int area_one = 0, area_two = 0, area_three = 0;
  for (double tr : tuple_ratios) {
    std::printf("%8.0f |", tr);
    for (double fr : feature_ratios) {
      rel::SiloPairSpec spec;
      spec.kind = rel::JoinKind::kLeftJoin;
      spec.other_rows = kOtherRows;
      spec.base_rows = static_cast<size_t>(tr * kOtherRows);
      spec.base_features = 2;
      spec.other_features = static_cast<size_t>(fr * 2);
      spec.seed = static_cast<uint64_t>(tr * 1000 + fr);
      rel::SiloPair pair = rel::GenerateSiloPair(spec);
      auto metadata = factorized::DerivePairMetadata(pair);
      AMALUR_CHECK(metadata.ok()) << metadata.status();
      const cost::CostFeatures features =
          cost::CostFeatures::FromMetadata(*metadata);

      const bench::StrategyTiming timing =
          bench::MeasureTraining(*metadata, kIterations, kRepeats);
      char cell_name[48];
      std::snprintf(cell_name, sizeof(cell_name), "fig5_tr%.0f_fr%.0f", tr,
                    fr);
      bench::LogObservation(features, kIterations, timing, cell_name);
      // Second horizon for the calibration log only (single-repeat): a
      // single shared iteration count cannot separate the one-time
      // materialization cost from the per-iteration constants, and the fit
      // would be rank-deficient.
      bench::LogObservation(
          features, kAltIterations,
          bench::MeasureTraining(*metadata, kAltIterations, 1),
          std::string(cell_name) + "_short_horizon");
      const cost::Strategy measured = timing.Winner();
      cells.push_back({features, measured});
      const cost::Strategy morpheus_says = morpheus.Decide(features);
      const cost::Strategy amalur_says = amalur_model.Decide(features);
      std::printf("  %c/%c/%c  |", Letter(measured), Letter(morpheus_says),
                  Letter(amalur_says));

      total += 1;
      morpheus_correct += morpheus_says == measured ? 1 : 0;
      amalur_correct += amalur_says == measured ? 1 : 0;
      // Areas: both estimators agree with the measurement -> easy area
      // (I for factorize, II for materialize); disagreement -> area III.
      if (morpheus_says == measured && amalur_says == measured) {
        (measured == cost::Strategy::kFactorize ? area_one : area_two) += 1;
      } else {
        area_three += 1;
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nAccuracy vs measured winner: Morpheus %.0f%%, Amalur %.0f%% "
      "(%d cells)\n",
      100.0 * morpheus_correct / total, 100.0 * amalur_correct / total, total);
  std::printf(
      "Decision areas: I (easy factorize) = %d, II (easy materialize) = %d, "
      "III (contested) = %d\n",
      area_one, area_two, area_three);

  // After-calibration pass: fit constants to the observation log this run
  // just extended (plus whatever earlier bench runs contributed) and
  // re-predict the plane from the stored cells — no re-measuring.
  const cost::Calibration calibration =
      cost::Calibrator(options).CalibrateFromLog(
          cost::ObservationLog::DefaultPath());
  std::printf("\nCalibration: %s\n", calibration.source.c_str());
  cost::AmalurCostModel calibrated_model(calibration.options);
  int calibrated_correct = 0;
  size_t cell_index = 0;
  std::printf("Calibrated decision map (measured/calibrated):\n%8s |",
              "TR \\ FR");
  for (double fr : feature_ratios) std::printf("  %5.0f  |", fr);
  std::printf("\n");
  for (double tr : tuple_ratios) {
    std::printf("%8.0f |", tr);
    for (size_t f = 0; f < std::size(feature_ratios); ++f, ++cell_index) {
      const Cell& cell = cells[cell_index];
      const cost::Strategy calibrated_says =
          calibrated_model.Decide(cell.features);
      calibrated_correct += calibrated_says == cell.measured ? 1 : 0;
      std::printf("   %c/%c   |", Letter(cell.measured),
                  Letter(calibrated_says));
    }
    std::printf("\n");
  }
  std::printf("Accuracy vs measured winner after calibration: %.0f%% "
              "(was %.0f%%)\n",
              100.0 * calibrated_correct / total,
              100.0 * amalur_correct / total);
  return 0;
}
