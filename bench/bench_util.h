#ifndef AMALUR_BENCH_BENCH_UTIL_H_
#define AMALUR_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "cost/cost_features.h"
#include "cost/observation_log.h"
#include "factorized/factorized_table.h"
#include "factorized/scenario_builder.h"
#include "metadata/di_metadata.h"
#include "ml/linear_models.h"
#include "ml/training_matrix.h"

/// \file bench_util.h
/// Shared measurement plumbing for the per-table/figure bench binaries.
/// Ground truth for every decision experiment is the same pair of end-to-end
/// pipelines the system itself runs: factorized = plan build + training over
/// silo matrices; materialized = target materialization + dense training.

namespace amalur {
namespace bench {

/// Smoke mode (`AMALUR_BENCH_SMOKE=1`): CI runs every bench binary on each
/// push to keep the emitted BENCH_*.json trajectories populated, but it
/// needs seconds, not minutes — benches shrink their data sizes and repeat
/// counts under this flag while keeping every scenario row present, so the
/// JSON schema (and the decision columns) stays identical to a full run.
inline bool SmokeMode() {
  const char* env = std::getenv("AMALUR_BENCH_SMOKE");
  if (env == nullptr) return false;
  // Common "off" spellings stay off — a shrunken run silently written to
  // the tracked BENCH_*.json would corrupt the perf trajectory.
  for (const char* off : {"", "0", "false", "no", "off"}) {
    if (std::strcmp(env, off) == 0) return false;
  }
  return true;
}

/// End-to-end seconds of both strategies for one scenario.
struct StrategyTiming {
  double factorized_seconds = 0.0;
  double materialized_seconds = 0.0;

  cost::Strategy Winner() const {
    return factorized_seconds < materialized_seconds
               ? cost::Strategy::kFactorize
               : cost::Strategy::kMaterialize;
  }
  double Speedup() const {
    return materialized_seconds /
           std::max(factorized_seconds, 1e-12);
  }
};

/// Gradient-descent linear regression, label at target column 0.
inline double RunFactorized(const metadata::DiMetadata& metadata,
                            size_t iterations) {
  Stopwatch watch;
  auto table = std::make_shared<factorized::FactorizedTable>(metadata);
  ml::FactorizedFeatures features(table, 0);
  const la::DenseMatrix labels = features.Labels();
  ml::GradientDescentOptions gd;
  gd.iterations = iterations;
  gd.learning_rate = 0.05;
  ml::TrainLinearRegression(features, labels, gd);
  return watch.ElapsedSeconds();
}

inline double RunMaterialized(const metadata::DiMetadata& metadata,
                              size_t iterations) {
  Stopwatch watch;
  la::DenseMatrix target = metadata.MaterializeTargetMatrix();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
  ml::MaterializedMatrix features(target.SelectColumns(feature_cols));
  la::DenseMatrix labels = target.SelectColumns({0});
  ml::GradientDescentOptions gd;
  gd.iterations = iterations;
  gd.learning_rate = 0.05;
  ml::TrainLinearRegression(features, labels, gd);
  return watch.ElapsedSeconds();
}

/// Medians over `repeats` runs (interleaved to decorrelate cache effects).
inline StrategyTiming MeasureTraining(const metadata::DiMetadata& metadata,
                                      size_t iterations, size_t repeats = 3) {
  std::vector<double> fact, mat;
  for (size_t r = 0; r < repeats; ++r) {
    fact.push_back(RunFactorized(metadata, iterations));
    mat.push_back(RunMaterialized(metadata, iterations));
  }
  std::sort(fact.begin(), fact.end());
  std::sort(mat.begin(), mat.end());
  return {fact[fact.size() / 2], mat[mat.size() / 2]};
}

/// Feeds one both-strategies measurement into the calibration loop: appends
/// a `(features, timing)` record to the observation log at
/// `ObservationLog::DefaultPath()` ($AMALUR_OBSERVATION_LOG, else
/// observations.jsonl in the working directory). Every harness that
/// measures both strategies routes through this, so any bench run grows the
/// calibration data. Logging failures are reported, never fatal — a
/// read-only working directory must not kill a measurement run.
inline void LogObservation(const cost::CostFeatures& features,
                           size_t iterations, const StrategyTiming& timing,
                           const std::string& scenario) {
  cost::ObservationLog log(cost::ObservationLog::DefaultPath());
  const Status status = log.Append(cost::Observation::FromFeatures(
      features, static_cast<double>(iterations), timing.factorized_seconds,
      timing.materialized_seconds, scenario));
  if (!status.ok()) {
    std::fprintf(stderr, "observation log: %s\n", status.ToString().c_str());
  }
}

}  // namespace bench
}  // namespace amalur

#endif  // AMALUR_BENCH_BENCH_UTIL_H_
