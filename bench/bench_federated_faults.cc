// Fault-tolerance experiment: what wire chaos costs the federated
// protocols. A seeded `FaultSchedule` injects message drops into vertical
// FLR (the retry layer must absorb them — identical convergence, extra
// wasted bytes and retransmissions growing with the drop rate) and
// crash/rejoin lifecycles into horizontal FedAvg under the degrade policy
// (re-weighted survivor rounds, round-boundary re-admission). Alongside
// the human-readable table it emits `BENCH_federated_faults.json`
// (scenario, drop rate, rounds degraded, delivered/wasted bytes, retries,
// final loss) so the reliability overhead can be tracked across commits.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "federated/fault_injection.h"
#include "federated/hfl.h"
#include "federated/vfl.h"

namespace {

using namespace amalur;

struct Measurement {
  std::string scenario;  // "vfl_drop" | "hfl_crash" | "hfl_rejoin"
  double drop_rate = 0.0;
  size_t silos = 0;
  size_t rounds = 0;
  size_t rounds_degraded = 0;
  size_t bytes_delivered = 0;
  size_t bytes_wasted = 0;
  size_t retries = 0;
  double seconds = 0.0;
  double final_loss = 0.0;
};

std::vector<federated::VflParty> MakeVflParties(size_t silos, size_t rows,
                                                uint64_t seed,
                                                la::DenseMatrix* labels) {
  Rng rng(seed);
  std::vector<federated::VflParty> parties;
  *labels = la::DenseMatrix(rows, 1);
  for (size_t k = 0; k < silos; ++k) {
    federated::VflParty party;
    party.x = la::DenseMatrix::RandomGaussian(rows, 3, &rng);
    la::DenseMatrix w = la::DenseMatrix::RandomGaussian(3, 1, &rng);
    labels->AddInPlace(party.x.Multiply(w));
    parties.push_back(std::move(party));
  }
  return parties;
}

std::vector<federated::HflPartition> MakeHflPartitions(size_t shards,
                                                       size_t rows_each,
                                                       uint64_t seed) {
  Rng rng(seed);
  const size_t features = 4;
  la::DenseMatrix w_true = la::DenseMatrix::RandomGaussian(features, 1, &rng);
  std::vector<federated::HflPartition> partitions;
  for (size_t p = 0; p < shards; ++p) {
    federated::HflPartition partition{
        la::DenseMatrix::RandomGaussian(rows_each, features, &rng),
        la::DenseMatrix(rows_each, 1)};
    partition.labels = partition.features.Multiply(w_true);
    partitions.push_back(std::move(partition));
  }
  return partitions;
}

Measurement RunVflDropSweep(double drop_rate, size_t rounds, size_t rows) {
  la::DenseMatrix labels;
  std::vector<federated::VflParty> parties =
      MakeVflParties(3, rows, 300, &labels);
  federated::VflOptions options;
  options.iterations = rounds;
  options.learning_rate = 0.1;
  options.policy.retry.max_retries = 10;

  federated::FaultSchedule schedule(301);
  federated::SiloFaultProfile lossy;
  lossy.drop_rate = drop_rate;
  schedule.SetDefault(lossy);
  federated::FaultyMessageBus bus(schedule);

  Stopwatch watch;
  auto result = federated::TrainVerticalFlrNary(parties, labels, options, &bus);
  const double seconds = watch.ElapsedSeconds();
  AMALUR_CHECK(result.ok()) << result.status();
  return {"vfl_drop",
          drop_rate,
          parties.size(),
          rounds,
          result->rounds_degraded,
          result->bytes_transferred,
          result->bytes_wasted,
          result->retries,
          seconds,
          result->loss_history.back()};
}

Measurement RunHflLifecycle(bool rejoin, size_t rounds, size_t rows_each) {
  std::vector<federated::HflPartition> partitions =
      MakeHflPartitions(4, rows_each, 302);
  federated::HflOptions options;
  options.rounds = rounds;
  options.learning_rate = 0.2;
  options.policy.on_silo_loss = federated::SiloLossAction::kDegrade;

  federated::FaultSchedule schedule(303);
  federated::SiloFaultProfile mortal;
  mortal.crash_at_round = 3;
  if (rejoin) mortal.rejoin_at_round = static_cast<int64_t>(rounds * 2 / 3);
  schedule.Set("P3", mortal);
  federated::FaultyMessageBus bus(schedule);

  Stopwatch watch;
  auto result = federated::TrainHorizontalFlr(partitions, options, &bus);
  const double seconds = watch.ElapsedSeconds();
  AMALUR_CHECK(result.ok()) << result.status();
  return {rejoin ? "hfl_rejoin" : "hfl_crash",
          0.0,
          partitions.size(),
          rounds,
          result->rounds_degraded,
          result->bytes_transferred,
          result->bytes_wasted,
          result->retries,
          seconds,
          result->loss_history.back()};
}

void WriteJson(const std::vector<Measurement>& measurements,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(out,
                 "  {\"scenario\": \"%s\", \"drop_rate\": %.2f, "
                 "\"silos\": %zu, \"rounds\": %zu, \"rounds_degraded\": %zu, "
                 "\"bytes_delivered\": %zu, \"bytes_wasted\": %zu, "
                 "\"retries\": %zu, \"seconds\": %.6f, "
                 "\"final_loss\": %.6f}%s\n",
                 m.scenario.c_str(), m.drop_rate, m.silos, m.rounds,
                 m.rounds_degraded, m.bytes_delivered, m.bytes_wasted,
                 m.retries, m.seconds, m.final_loss,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
}

void PrintRow(const Measurement& m) {
  std::printf("%11s %5.2f %6zu %7zu %9zu %12zu %10zu %8zu %9.3f %10.4f\n",
              m.scenario.c_str(), m.drop_rate, m.silos, m.rounds,
              m.rounds_degraded, m.bytes_delivered, m.bytes_wasted, m.retries,
              m.seconds, m.final_loss);
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  std::printf("=== fault tolerance: chaos cost of the federated wire ===%s\n\n",
              smoke ? " (SMOKE MODE — sizes scaled down)" : "");
  std::printf("%11s %5s %6s %7s %9s %12s %10s %8s %9s %10s\n", "scenario",
              "drop", "silos", "rounds", "degraded", "delivered", "wasted",
              "retries", "time(s)", "loss");

  std::vector<Measurement> measurements;
  const size_t kVflRounds = smoke ? 6 : 30;
  const size_t kVflRows = smoke ? 40 : 240;
  for (double drop : {0.0, 0.05, 0.1, 0.2}) {
    measurements.push_back(RunVflDropSweep(drop, kVflRounds, kVflRows));
    PrintRow(measurements.back());
  }
  const size_t kHflRounds = smoke ? 9 : 45;
  const size_t kHflRows = smoke ? 40 : 250;
  for (bool rejoin : {false, true}) {
    measurements.push_back(RunHflLifecycle(rejoin, kHflRounds, kHflRows));
    PrintRow(measurements.back());
  }

  WriteJson(measurements, "BENCH_federated_faults.json");
  std::printf(
      "\nWrote BENCH_federated_faults.json (%zu measurements).\n"
      "Expected shape: delivered bytes and final loss are *identical* across\n"
      "the drop sweep (retransmission recovers the exact protocol); wasted\n"
      "bytes and retries grow with the drop rate. The crash row degrades all\n"
      "remaining rounds; the rejoin row re-admits the silo at the boundary\n"
      "and degrades only the window in between.\n",
      measurements.size());
  return 0;
}
