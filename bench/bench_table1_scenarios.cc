// Reproduces paper Table I as a performance experiment: for each of the four
// dataset relationships (full outer join, inner join, left join, union) the
// harness runs the full pipeline — automatic integration through the Amalur
// facade, then factorized vs materialized training forced through the same
// Train path — and prints per-scenario timings, the measured winner and the
// optimizer's prediction. The paper's qualitative claim: factorization wins
// where integration duplicates data (join fan-out), materialization wins
// where it does not (unions, 1:1 joins).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/amalur.h"
#include "cost/amalur_cost_model.h"
#include "cost/cost_features.h"
#include "relational/generator.h"

namespace {

using namespace amalur;

struct ScenarioRow {
  const char* name;
  rel::SiloPairSpec spec;
};

std::vector<ScenarioRow> MakeScenarios() {
  std::vector<ScenarioRow> rows;

  // Example 1: full outer join — partially overlapping rows and columns
  // (feature augmentation / general FL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kFullOuterJoin;
    spec.base_rows = 20000;
    spec.other_rows = 8000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.shared_features = 2;
    spec.match_fraction = 0.5;
    spec.row_overlap = 0.5;
    spec.seed = 11;
    rows.push_back({"1 full outer join", spec});
  }
  // Example 2: inner join — shared sample space (VFL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kInnerJoin;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.match_fraction = 1.0;
    spec.row_overlap = 1.0;
    spec.seed = 12;
    rows.push_back({"2 inner join     ", spec});
  }
  // Example 3: left join with fan-out — the classic feature-augmentation
  // star schema (only the base holds the label).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kLeftJoin;
    spec.base_rows = 40000;
    spec.other_rows = 4000;  // fan-out 10
    spec.base_features = 2;
    spec.other_features = 60;
    spec.seed = 13;
    rows.push_back({"3 left join      ", spec});
  }
  // Example 4: union — shared feature space, disjoint rows (HFL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kUnion;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 0;
    spec.other_features = 0;
    spec.shared_features = 30;
    spec.match_fraction = 0.0;
    spec.row_overlap = 0.0;
    spec.other_has_label = true;
    spec.seed = 14;
    rows.push_back({"4 union          ", spec});
  }
  return rows;
}

/// Trains under a forced strategy `repeats` times and returns the median
/// training seconds, all through `Amalur::Train`.
double MedianTrainSeconds(core::Amalur* system,
                          const core::IntegrationHandle& integration,
                          core::TrainRequest request,
                          core::ExecutionStrategy strategy, size_t repeats) {
  request.force_strategy = strategy;
  std::vector<double> seconds;
  for (size_t r = 0; r < repeats; ++r) {
    auto model = system->Train(integration, request);
    AMALUR_CHECK(model.ok()) << model.status();
    seconds.push_back(model->outcome().seconds);
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace

int main() {
  const size_t kIterations = 20;
  cost::AmalurCostModelOptions options;
  options.training_iterations = static_cast<double>(kIterations);
  cost::AmalurCostModel model(options);

  std::printf("=== Table I scenarios: factorized vs materialized training ===\n");
  std::printf("(GD linear regression, %zu iterations; medians of 3 runs;\n"
              " each scenario integrated through Amalur::Integrate(spec))\n\n",
              kIterations);
  std::printf("%-18s %10s %10s %8s %9s %9s %10s\n", "scenario", "fact (s)",
              "mat (s)", "speedup", "measured", "amalur", "T shape");

  for (const ScenarioRow& row : MakeScenarios()) {
    rel::SiloPair pair = rel::GenerateSiloPair(row.spec);

    // Generic short column names (x0, z0, s0...) need strong evidence to
    // match; a stricter threshold keeps the key match and rejects noise.
    core::AmalurOptions system_options;
    system_options.matcher.threshold = 0.75;
    core::Amalur system(system_options);
    AMALUR_CHECK_OK(
        system.catalog()->RegisterSource({"S1", pair.base, "silo-1", false}));
    AMALUR_CHECK_OK(
        system.catalog()->RegisterSource({"S2", pair.other, "silo-2", false}));

    core::IntegrationSpec spec;
    spec.sources = {"S1", "S2"};
    spec.relationships = {row.spec.kind};
    auto integration = system.Integrate(spec);
    AMALUR_CHECK(integration.ok()) << integration.status();

    core::TrainRequest request;
    request.label_column = "y";
    request.gd.iterations = kIterations;
    request.gd.learning_rate = 0.05;

    const double fact_seconds = MedianTrainSeconds(
        &system, *integration, request, core::ExecutionStrategy::kFactorize, 3);
    const double mat_seconds =
        MedianTrainSeconds(&system, *integration, request,
                           core::ExecutionStrategy::kMaterialize, 3);

    const cost::CostFeatures features =
        cost::CostFeatures::FromMetadata(integration->metadata);
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%zux%zu",
                  integration->metadata.target_rows(),
                  integration->metadata.target_cols());
    std::printf("%-18s %10.3f %10.3f %7.2fx %9s %9s %10s\n", row.name,
                fact_seconds, mat_seconds,
                mat_seconds / std::max(fact_seconds, 1e-12),
                cost::StrategyToString(fact_seconds < mat_seconds
                                           ? cost::Strategy::kFactorize
                                           : cost::Strategy::kMaterialize),
                cost::StrategyToString(model.Decide(features)), shape);
  }
  std::printf(
      "\nExpected shape (paper §IV): factorization wins where integration\n"
      "duplicates source data (fan-out joins); materialization wins for\n"
      "unions and 1:1 joins (Example IV.1's full-tgd prescreen).\n");
  return 0;
}
