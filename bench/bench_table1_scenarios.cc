// Reproduces paper Table I as a performance experiment: for each dataset
// relationship — the four pairwise relationships (full outer join, inner
// join, left join, union) plus the two graph shapes the edge-list spec
// unlocks (snowflake, union-of-stars) — the harness runs the full pipeline:
// automatic integration through the Amalur facade, then factorized vs
// materialized training forced through the same Train path. It prints
// per-scenario timings, the measured winner and the optimizer's prediction,
// and emits machine-readable `BENCH_table1.json` so the decision quality
// and perf trajectory can be tracked across commits. The paper's
// qualitative claim: factorization wins where integration duplicates data
// (join fan-out, chained or sharded), materialization wins where it does
// not (unions, 1:1 joins).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/amalur.h"
#include "cost/amalur_cost_model.h"
#include "cost/calibrator.h"
#include "cost/cost_features.h"
#include "cost/observation_log.h"
#include "relational/generator.h"

namespace {

using namespace amalur;

/// Smoke mode divides every scenario's row counts by this factor (and drops
/// repeats/iterations) so CI can run the full scenario table in seconds.
size_t RowScale() { return bench::SmokeMode() ? 40 : 1; }

/// A fully prepared scenario: its own facade instance with the sources
/// registered and the integration derived.
struct PreparedScenario {
  std::string name;  // table label
  std::string slug;  // json identifier
  std::unique_ptr<core::Amalur> system;
  core::IntegrationHandle integration;
};

core::Amalur* NewSystem(std::vector<PreparedScenario>* out,
                        const char* name, const char* slug) {
  // Generic short column names (x0, z0, u0...) need strong evidence to
  // match; a stricter threshold keeps the key match and rejects noise.
  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  out->push_back({name, slug, std::make_unique<core::Amalur>(options), {}});
  return out->back().system.get();
}

void FinishScenario(std::vector<PreparedScenario>* out,
                    const core::IntegrationSpec& spec) {
  auto integration = out->back().system->Integrate(spec);
  AMALUR_CHECK(integration.ok()) << integration.status();
  out->back().integration = *std::move(integration);
}

std::vector<PreparedScenario> MakeScenarios() {
  std::vector<PreparedScenario> out;
  // Smoke-scaled sizes: every scenario row survives, just smaller.
  const auto scaled = [](size_t rows) {
    return std::max<size_t>(2, rows / RowScale());
  };

  const auto pair_scenario = [&out, &scaled](const char* name, const char* slug,
                                             rel::SiloPairSpec spec) {
    spec.base_rows = scaled(spec.base_rows);
    spec.other_rows = scaled(spec.other_rows);
    core::Amalur* system = NewSystem(&out, name, slug);
    rel::SiloPair pair = rel::GenerateSiloPair(spec);
    AMALUR_CHECK_OK(
        system->catalog()->RegisterSource({"S1", pair.base, "silo-1", false}));
    AMALUR_CHECK_OK(
        system->catalog()->RegisterSource({"S2", pair.other, "silo-2", false}));
    core::IntegrationSpec integration_spec;
    integration_spec.sources = {"S1", "S2"};
    integration_spec.relationships = {spec.kind};
    FinishScenario(&out, integration_spec);
  };

  // Example 1: full outer join — partially overlapping rows and columns
  // (feature augmentation / general FL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kFullOuterJoin;
    spec.base_rows = 20000;
    spec.other_rows = 8000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.shared_features = 2;
    spec.match_fraction = 0.5;
    spec.row_overlap = 0.5;
    spec.seed = 11;
    pair_scenario("1 full outer join", "full_outer_join", spec);
  }
  // Example 2: inner join — shared sample space (VFL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kInnerJoin;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.match_fraction = 1.0;
    spec.row_overlap = 1.0;
    spec.seed = 12;
    pair_scenario("2 inner join     ", "inner_join", spec);
  }
  // Example 3: left join with fan-out — the classic feature-augmentation
  // star schema (only the base holds the label).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kLeftJoin;
    spec.base_rows = 40000;
    spec.other_rows = 4000;  // fan-out 10
    spec.base_features = 2;
    spec.other_features = 60;
    spec.seed = 13;
    pair_scenario("3 left join      ", "left_join", spec);
  }
  // Example 4: union — shared feature space, disjoint rows (HFL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kUnion;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 0;
    spec.other_features = 0;
    spec.shared_features = 30;
    spec.match_fraction = 0.0;
    spec.row_overlap = 0.0;
    spec.other_has_label = true;
    spec.seed = 14;
    pair_scenario("4 union          ", "union", spec);
  }
  // Example 5: snowflake — fact -> dim -> sub-dim chain; redundancy
  // compounds along the composed fan-out (edge-list spec form).
  {
    rel::SnowflakeSpec spec;
    spec.fact_rows = scaled(40000);
    spec.fact_features = 2;
    spec.level_rows = {scaled(2000), scaled(50)};
    spec.level_features = {30, 20};
    spec.seed = 15;
    rel::Snowflake snowflake = rel::GenerateSnowflake(spec);
    core::Amalur* system = NewSystem(&out, "5 snowflake      ", "snowflake");
    for (const rel::Table& table : snowflake.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact", "dim0", rel::JoinKind::kLeftJoin},
                              {"dim0", "dim1", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  // Example 6: union-of-stars — two horizontally partitioned fact shards,
  // each a star with its own dimension (edge-list spec form).
  {
    rel::UnionOfStarsSpec spec;
    spec.shards = 2;
    spec.fact_rows = scaled(20000);
    spec.fact_features = 2;
    spec.dim_rows = scaled(1000);
    spec.dim_features = 30;
    spec.seed = 16;
    rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);
    core::Amalur* system =
        NewSystem(&out, "6 union of stars ", "union_of_stars");
    for (const rel::Table& table : scenario.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                              {"fact0", "fact1", rel::JoinKind::kUnion},
                              {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  // Example 7: conformed snowflake — one shared dimension referenced
  // through two intermediate dimensions (a DAG, not a tree); the shared
  // silo's columns integrate once and its fan-out compounds through both
  // parent chains.
  {
    rel::ConformedSnowflakeSpec spec;
    spec.fact_rows = scaled(40000);
    spec.fact_features = 2;
    spec.branches = 2;
    spec.branch_rows = scaled(1000);
    spec.branch_features = 20;
    spec.shared_rows = scaled(50);
    spec.shared_features = 20;
    spec.seed = 17;
    rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);
    core::Amalur* system =
        NewSystem(&out, "7 conformed snflk", "conformed_snowflake");
    for (const rel::Table& table : scenario.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact", "branch0", rel::JoinKind::kLeftJoin},
                              {"fact", "branch1", rel::JoinKind::kLeftJoin},
                              {"branch0", "shared", rel::JoinKind::kLeftJoin},
                              {"branch1", "shared", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  return out;
}

/// Trains under a forced strategy `repeats` times and returns the median
/// training seconds, all through `Amalur::Train`.
double MedianTrainSeconds(core::Amalur* system,
                          const core::IntegrationHandle& integration,
                          core::TrainRequest request,
                          core::ExecutionStrategy strategy, size_t repeats) {
  request.force_strategy = strategy;
  std::vector<double> seconds;
  for (size_t r = 0; r < repeats; ++r) {
    auto model = system->Train(integration, request);
    AMALUR_CHECK(model.ok()) << model.status();
    seconds.push_back(model->outcome().seconds);
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

struct Measurement {
  std::string scenario;
  std::string shape;
  double factorized_seconds = 0.0;
  double materialized_seconds = 0.0;
  std::string measured;              // measured winner
  std::string predicted;             // optimizer's choice, analytic defaults
  std::string predicted_calibrated;  // optimizer's choice, fitted constants
  size_t target_rows = 0;
  size_t target_cols = 0;
  cost::CostFeatures features;
};

void WriteJson(const std::vector<Measurement>& measurements,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(out,
                 "  {\"scenario\": \"%s\", \"shape\": \"%s\", "
                 "\"factorized_seconds\": %.6f, \"materialized_seconds\": "
                 "%.6f, \"speedup\": %.3f, \"measured\": \"%s\", "
                 "\"predicted\": \"%s\", \"predicted_calibrated\": \"%s\", "
                 "\"target_rows\": %zu, \"target_cols\": %zu}%s\n",
                 m.scenario.c_str(), m.shape.c_str(), m.factorized_seconds,
                 m.materialized_seconds,
                 m.materialized_seconds / std::max(m.factorized_seconds, 1e-12),
                 m.measured.c_str(), m.predicted.c_str(),
                 m.predicted_calibrated.c_str(), m.target_rows, m.target_cols,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t kIterations = smoke ? 5 : 20;
  const size_t kAltIterations = smoke ? 2 : 5;
  const size_t kRepeats = smoke ? 1 : 3;
  cost::AmalurCostModelOptions options;
  options.training_iterations = static_cast<double>(kIterations);
  cost::AmalurCostModel model(options);

  std::printf("=== Table I scenarios: factorized vs materialized training ===\n");
  std::printf("(GD linear regression, %zu iterations; medians of %zu run%s;\n"
              " each scenario integrated through Amalur::Integrate(spec)%s)\n\n",
              kIterations, kRepeats, kRepeats == 1 ? "" : "s",
              smoke ? "; SMOKE MODE — sizes scaled down" : "");
  std::printf("%-18s %10s %10s %8s %9s %9s %10s %15s\n", "scenario",
              "fact (s)", "mat (s)", "speedup", "measured", "amalur",
              "T shape", "graph");

  std::vector<Measurement> measurements;
  for (PreparedScenario& scenario : MakeScenarios()) {
    core::TrainRequest request;
    request.label_column = "y";
    request.gd.iterations = kIterations;
    request.gd.learning_rate = 0.05;

    const double fact_seconds = MedianTrainSeconds(
        scenario.system.get(), scenario.integration, request,
        core::ExecutionStrategy::kFactorize, kRepeats);
    const double mat_seconds = MedianTrainSeconds(
        scenario.system.get(), scenario.integration, request,
        core::ExecutionStrategy::kMaterialize, kRepeats);

    const metadata::DiMetadata& md = scenario.integration.metadata;
    const cost::CostFeatures features = cost::CostFeatures::FromMetadata(md);
    bench::LogObservation(features, kIterations,
                          {fact_seconds, mat_seconds}, scenario.slug);
    // Second, shorter training horizon, logged for calibration only: the
    // materialization cost is a one-time cost amortized over iterations, so
    // a log where every observation shares one horizon cannot separate the
    // per-iteration constants from the one-time ones (the calibrator
    // rejects it as rank-deficient).
    core::TrainRequest alt_request = request;
    alt_request.gd.iterations = kAltIterations;
    bench::LogObservation(
        features, kAltIterations,
        {MedianTrainSeconds(scenario.system.get(), scenario.integration,
                            alt_request, core::ExecutionStrategy::kFactorize,
                            kRepeats),
         MedianTrainSeconds(scenario.system.get(), scenario.integration,
                            alt_request, core::ExecutionStrategy::kMaterialize,
                            kRepeats)},
        scenario.slug + "_short_horizon");
    Measurement m;
    m.scenario = scenario.slug;
    m.shape = metadata::IntegrationShapeToString(md.shape());
    m.factorized_seconds = fact_seconds;
    m.materialized_seconds = mat_seconds;
    m.measured = cost::StrategyToString(fact_seconds < mat_seconds
                                            ? cost::Strategy::kFactorize
                                            : cost::Strategy::kMaterialize);
    m.predicted = cost::StrategyToString(model.Decide(features));
    m.target_rows = md.target_rows();
    m.target_cols = md.target_cols();
    m.features = features;
    measurements.push_back(m);

    char shape[32];
    std::snprintf(shape, sizeof(shape), "%zux%zu", md.target_rows(),
                  md.target_cols());
    std::printf("%-18s %10.3f %10.3f %7.2fx %9s %9s %10s %15s\n",
                scenario.name.c_str(), fact_seconds, mat_seconds,
                mat_seconds / std::max(fact_seconds, 1e-12),
                m.measured.c_str(), m.predicted.c_str(), shape,
                m.shape.c_str());
  }

  // Calibration pass: fit the cost-model constants to the observation log
  // this run just extended, persist them for the optimizer
  // ($AMALUR_CALIBRATION_FILE / TrainRequest::calibration_file), and
  // re-predict every scenario — the before/after decision map is the whole
  // point of the calibration loop.
  const cost::Calibration calibration =
      cost::Calibrator(options).CalibrateFromLog(
          cost::ObservationLog::DefaultPath());
  std::printf("\nCalibration: %s\n", calibration.source.c_str());
  // Written even on fallback: the file then carries the (positive, valid)
  // analytic defaults with the fallback reason in its source field, so the
  // CI artifact always exists and always says where its constants came from.
  const Status status =
      cost::WriteCalibrationFile("CALIBRATION.json", calibration);
  if (status.ok()) {
    std::printf("Wrote CALIBRATION.json (flop_cost=%.3e, "
                "factorized_cell_cost=%.3f, materialize_cell_cost=%.3e, "
                "factorized_row_overhead=%.3e)\n",
                calibration.options.flop_cost,
                calibration.options.factorized_cell_cost,
                calibration.options.materialize_cell_cost,
                calibration.options.factorized_row_overhead);
  } else {
    std::fprintf(stderr, "CALIBRATION.json: %s\n", status.ToString().c_str());
  }

  cost::AmalurCostModel calibrated_model(calibration.options);
  size_t default_wrong = 0, calibrated_wrong = 0;
  std::printf("\n%-20s %9s %9s %11s\n", "decision map", "measured", "default",
              "calibrated");
  for (Measurement& m : measurements) {
    m.predicted_calibrated =
        cost::StrategyToString(calibrated_model.Decide(m.features));
    default_wrong += m.predicted != m.measured ? 1 : 0;
    calibrated_wrong += m.predicted_calibrated != m.measured ? 1 : 0;
    std::printf("%-20s %9s %9s %11s%s\n", m.scenario.c_str(),
                m.measured.c_str(), m.predicted.c_str(),
                m.predicted_calibrated.c_str(),
                m.predicted_calibrated == m.measured ? "" : "  <- MISPREDICT");
  }
  std::printf("Mispredictions: default %zu/%zu, calibrated %zu/%zu\n",
              default_wrong, measurements.size(), calibrated_wrong,
              measurements.size());

  WriteJson(measurements, "BENCH_table1.json");
  std::printf(
      "\nWrote BENCH_table1.json (%zu scenarios).\n"
      "Expected shape (paper §IV): factorization wins where integration\n"
      "duplicates source data (fan-out joins, chained or sharded);\n"
      "materialization wins for unions and 1:1 joins (Example IV.1's\n"
      "full-tgd prescreen).\n",
      measurements.size());
  return 0;
}
