// Reproduces paper Table I as a performance experiment: for each of the four
// dataset relationships (full outer join, inner join, left join, union) the
// harness runs the full pipeline — metadata derivation, then factorized vs
// materialized training — and prints per-scenario timings, the measured
// winner and the optimizer's prediction. The paper's qualitative claim:
// factorization wins where integration duplicates data (join fan-out),
// materialization wins where it does not (unions, 1:1 joins).

#include <cstdio>

#include "bench/bench_util.h"
#include "cost/amalur_cost_model.h"

namespace {

using namespace amalur;

struct ScenarioRow {
  const char* name;
  rel::SiloPairSpec spec;
};

std::vector<ScenarioRow> MakeScenarios() {
  std::vector<ScenarioRow> rows;

  // Example 1: full outer join — partially overlapping rows and columns
  // (feature augmentation / general FL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kFullOuterJoin;
    spec.base_rows = 20000;
    spec.other_rows = 8000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.shared_features = 2;
    spec.match_fraction = 0.5;
    spec.row_overlap = 0.5;
    spec.seed = 11;
    rows.push_back({"1 full outer join", spec});
  }
  // Example 2: inner join — shared sample space (VFL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kInnerJoin;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.match_fraction = 1.0;
    spec.row_overlap = 1.0;
    spec.seed = 12;
    rows.push_back({"2 inner join     ", spec});
  }
  // Example 3: left join with fan-out — the classic feature-augmentation
  // star schema (only the base holds the label).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kLeftJoin;
    spec.base_rows = 40000;
    spec.other_rows = 4000;  // fan-out 10
    spec.base_features = 2;
    spec.other_features = 60;
    spec.seed = 13;
    rows.push_back({"3 left join      ", spec});
  }
  // Example 4: union — shared feature space, disjoint rows (HFL).
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kUnion;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 0;
    spec.other_features = 0;
    spec.shared_features = 30;
    spec.match_fraction = 0.0;
    spec.row_overlap = 0.0;
    spec.other_has_label = true;
    spec.seed = 14;
    rows.push_back({"4 union          ", spec});
  }
  return rows;
}

}  // namespace

int main() {
  const size_t kIterations = 20;
  cost::AmalurCostModelOptions options;
  options.training_iterations = static_cast<double>(kIterations);
  cost::AmalurCostModel model(options);

  std::printf("=== Table I scenarios: factorized vs materialized training ===\n");
  std::printf("(GD linear regression, %zu iterations; medians of 3 runs)\n\n",
              kIterations);
  std::printf("%-18s %10s %10s %8s %9s %9s %10s\n", "scenario", "fact (s)",
              "mat (s)", "speedup", "measured", "amalur", "T shape");

  for (const ScenarioRow& row : MakeScenarios()) {
    rel::SiloPair pair = rel::GenerateSiloPair(row.spec);
    auto metadata = factorized::DerivePairMetadata(pair);
    AMALUR_CHECK(metadata.ok()) << metadata.status();
    const bench::StrategyTiming timing =
        bench::MeasureTraining(*metadata, kIterations);
    const cost::CostFeatures features =
        cost::CostFeatures::FromMetadata(*metadata);
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%zux%zu", metadata->target_rows(),
                  metadata->target_cols());
    std::printf("%-18s %10.3f %10.3f %7.2fx %9s %9s %10s\n", row.name,
                timing.factorized_seconds, timing.materialized_seconds,
                timing.Speedup(),
                cost::StrategyToString(timing.Winner()),
                cost::StrategyToString(model.Decide(features)), shape);
  }
  std::printf(
      "\nExpected shape (paper §IV): factorization wins where integration\n"
      "duplicates source data (fan-out joins); materialization wins for\n"
      "unions and 1:1 joins (Example IV.1's full-tgd prescreen).\n");
  return 0;
}
