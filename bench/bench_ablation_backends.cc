// Ablation study of the training-backend design choices DESIGN.md calls
// out. Two questions:
//
//  1. Backend choice vs target sparsity: dense materialization multiplies
//     through outer-join NULL padding, CSR materialization skips it, and
//     factorization never materializes it. Sweep the unmatched fraction of
//     a full outer join and time all three backends on identical GD runs.
//
//  2. Fan-out deduplication: the factorized kernels compute once per
//     *unique source row* and expand through the indicator. The
//     Morpheus-style reference shares the kernels, so the ablation here
//     contrasts the factorized path against dense materialization as the
//     join fan-out grows — the speedup is exactly the deduplication win.

#include <cstdio>

#include "bench/bench_util.h"
#include "ml/training_matrix.h"

namespace {

using namespace amalur;

double RunSparseMaterialized(const metadata::DiMetadata& metadata,
                             size_t iterations) {
  Stopwatch watch;
  la::DenseMatrix target = metadata.MaterializeTargetMatrix();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
  ml::SparseMaterializedMatrix features =
      ml::SparseMaterializedMatrix::FromDense(target.SelectColumns(feature_cols));
  la::DenseMatrix labels = target.SelectColumns({0});
  ml::GradientDescentOptions gd;
  gd.iterations = iterations;
  gd.learning_rate = 0.05;
  ml::TrainLinearRegression(features, labels, gd);
  return watch.ElapsedSeconds();
}

}  // namespace

int main() {
  const size_t kIterations = 20;

  std::printf("=== Ablation 1: backend vs target NULL padding ===\n");
  std::printf("(full outer join, 20k+20k rows, 20 features/side; the match\n");
  std::printf("fraction controls how much of T is NULL padding)\n\n");
  std::printf("%9s %10s %12s %12s %12s\n", "matched", "null frac", "dense (s)",
              "sparse (s)", "factor. (s)");
  for (double match : {1.0, 0.5, 0.2, 0.05}) {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kFullOuterJoin;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 20;
    spec.other_features = 20;
    spec.match_fraction = match;
    spec.row_overlap = match;
    spec.seed = static_cast<uint64_t>(match * 1000);
    rel::SiloPair pair = rel::GenerateSiloPair(spec);
    auto metadata = factorized::DerivePairMetadata(pair);
    AMALUR_CHECK(metadata.ok()) << metadata.status();

    la::DenseMatrix target = metadata->MaterializeTargetMatrix();
    size_t zeros = 0;
    for (size_t i = 0; i < target.size(); ++i) {
      zeros += target.data()[i] == 0.0 ? 1 : 0;
    }
    const double null_fraction =
        static_cast<double>(zeros) / static_cast<double>(target.size());

    const double dense = bench::RunMaterialized(*metadata, kIterations);
    const double sparse = RunSparseMaterialized(*metadata, kIterations);
    const double factorized = bench::RunFactorized(*metadata, kIterations);
    std::printf("%8.0f%% %10.2f %12.3f %12.3f %12.3f\n", 100 * match,
                null_fraction, dense, sparse, factorized);
  }

  std::printf("\n=== Ablation 2: fan-out deduplication win ===\n");
  std::printf("(left join, rS2=4000, 40 dimension features; fan-out = rS1/rS2)\n\n");
  std::printf("%8s %12s %12s %9s\n", "fan-out", "dense (s)", "factor. (s)",
              "speedup");
  for (size_t fanout : {1, 2, 5, 10, 20}) {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kLeftJoin;
    spec.other_rows = 4000;
    spec.base_rows = 4000 * fanout;
    spec.base_features = 2;
    spec.other_features = 40;
    spec.seed = 77 + fanout;
    rel::SiloPair pair = rel::GenerateSiloPair(spec);
    auto metadata = factorized::DerivePairMetadata(pair);
    AMALUR_CHECK(metadata.ok()) << metadata.status();
    const bench::StrategyTiming timing =
        bench::MeasureTraining(*metadata, kIterations);
    std::printf("%8zu %12.3f %12.3f %8.2fx\n", fanout,
                timing.materialized_seconds, timing.factorized_seconds,
                timing.Speedup());
  }
  std::printf(
      "\nExpected: the factorized advantage grows ~linearly with fan-out\n"
      "(compute is per unique source row); sparse materialization closes\n"
      "part of the gap only when the target is NULL-heavy.\n");
  return 0;
}
