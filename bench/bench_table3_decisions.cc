// Reproduces paper Table III: "Percentage of correct factorization decisions
// of Amalur vs Morpheus".
//
// Setting (paper footnote 3, scaled): cS1 = 1, cS2 = 100, rS1 swept over a
// geometric grid (capped at 50k rows for laptop runtimes; the paper sweeps
// to 5M on a server), rS2 = 0.2 * rS1. Ten scenarios per quadrant of the
// 2x2 grid {redundancy in sources} x {redundancy in target}:
//   * target redundancy  = join fan-out (each S2 row serves 5 S1 rows)
//                          vs a 1:1 partial match (no fan-out),
//   * source redundancy  = 50% duplicate rows appended inside S2 vs none.
// Ground truth = measured end-to-end training time of both strategies; each
// estimator's decision is scored against it.

#include <cstdio>

#include "bench/bench_util.h"
#include "cost/amalur_cost_model.h"
#include "cost/morpheus_heuristic.h"

namespace {

using namespace amalur;

struct QuadrantResult {
  int amalur_correct = 0;
  int morpheus_correct = 0;
  int total = 0;
};

QuadrantResult RunQuadrant(bool source_redundancy, bool target_redundancy) {
  // Ten scenarios per quadrant: the rS1 sweep x two training horizons. The
  // horizon varies the amortization of the one-time materialization cost —
  // a workload parameter the Amalur cost model prices explicitly and the
  // fixed TR/FR thresholds of [27] cannot see.
  const size_t sweep[] = {1000, 5000, 10000, 20000, 50000};
  const size_t horizons[] = {5, 60};
  cost::MorpheusHeuristic morpheus;

  QuadrantResult result;
  for (size_t size_index = 0; size_index < std::size(sweep); ++size_index) {
    for (size_t h = 0; h < std::size(horizons); ++h) {
      const size_t rs1 = sweep[size_index];
      const size_t iterations = horizons[h];
      rel::SiloPairSpec spec;
      spec.base_rows = rs1;
      spec.base_features = 1;    // cS1 = 1
      spec.other_features = 100;  // cS2 = 100
      spec.other_rows = rs1 / 5;  // rS2 = 0.2 rS1
      if (target_redundancy) {
        // Left join over the shared keys: S2 rows repeat in T. The
        // *effective* fan-out varies with the match fraction, which the
        // shape-level tuple ratio (always rT/rS2 = 5 here) cannot see.
        spec.kind = rel::JoinKind::kLeftJoin;
        spec.match_fraction = size_index % 2 == 0 ? 1.0 : 0.5;
        spec.row_overlap = 1.0;
      } else {
        // Inner join, 1:1 partial match: the target repeats nothing and has
        // no NULL padding (Example IV.1's no-extra-redundancy case).
        spec.kind = rel::JoinKind::kInnerJoin;
        spec.match_fraction = 0.2;
        spec.row_overlap = 1.0;
      }
      spec.other_dup_rate = source_redundancy ? 0.5 : 0.0;
      spec.seed = 1000 * size_index + 31 * h + (source_redundancy ? 7 : 0) +
                  (target_redundancy ? 3 : 0);

      rel::SiloPair pair = rel::GenerateSiloPair(spec);
      auto metadata = factorized::DerivePairMetadata(pair);
      AMALUR_CHECK(metadata.ok()) << metadata.status();
      const cost::CostFeatures features =
          cost::CostFeatures::FromMetadata(*metadata);
      cost::AmalurCostModelOptions options;
      options.training_iterations = static_cast<double>(iterations);
      cost::AmalurCostModel amalur_model(options);

      const bench::StrategyTiming timing =
          bench::MeasureTraining(*metadata, iterations);
      char cell_name[64];
      std::snprintf(cell_name, sizeof(cell_name),
                    "table3_rs1_%zu_it%zu_src%d_tgt%d", rs1, iterations,
                    source_redundancy ? 1 : 0, target_redundancy ? 1 : 0);
      bench::LogObservation(features, iterations, timing, cell_name);
      const cost::Strategy truth = timing.Winner();
      result.total += 1;
      result.amalur_correct += amalur_model.Decide(features) == truth ? 1 : 0;
      result.morpheus_correct += morpheus.Decide(features) == truth ? 1 : 0;
    }
  }
  return result;
}

void PrintCell(const char* label, const QuadrantResult& q) {
  std::printf("%s  Morpheus: %3.0f%%   Amalur: %3.0f%%   (%d scenarios)\n",
              label, 100.0 * q.morpheus_correct / q.total,
              100.0 * q.amalur_correct / q.total, q.total);
}

}  // namespace

int main() {
  std::printf(
      "=== Table III: correct factorize/materialize decisions ===\n"
      "Setting: cS1=1, cS2=100, rS1 in {1k..50k}, rS2=0.2*rS1; 10 scenarios\n"
      "per quadrant (size sweep x training horizons {5, 60} iterations).\n"
      "Ground truth = measured end-to-end training time of both strategies.\n"
      "Paper reports: src+tgt 70/70, src-only 70/70, tgt-only 20/80,\n"
      "none 30/70 (Morpheus/Amalur).\n\n");

  const QuadrantResult both = RunQuadrant(true, true);
  const QuadrantResult source_only = RunQuadrant(true, false);
  const QuadrantResult target_only = RunQuadrant(false, true);
  const QuadrantResult neither = RunQuadrant(false, false);

  std::printf("Redundancy in sources=yes, target=yes:\n");
  PrintCell("  ", both);
  std::printf("Redundancy in sources=yes, target=no :\n");
  PrintCell("  ", source_only);
  std::printf("Redundancy in sources=no , target=yes:\n");
  PrintCell("  ", target_only);
  std::printf("Redundancy in sources=no , target=no :\n");
  PrintCell("  ", neither);
  return 0;
}
