// Reproduces paper Figure 4's computation as a micro-benchmark: the LMM
// rewrite  T·X → I₁D₁M₁ᵀX + ((I₂D₂M₂ᵀ) ∘ R₂)X  versus the materialized
// T·X, on the running example's structure scaled up (full outer join with
// overlapping columns m, a). Also measures the transpose rewrite used by
// gradients and the Morpheus-style rewrite (1) for reference (it is faster
// but WRONG on overlapping silos — it double-counts; correctness is checked
// in the test suite, speed is reported here).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "factorized/factorized_table.h"
#include "factorized/scenario_builder.h"
#include "relational/generator.h"

namespace {

using namespace amalur;

/// Running-example structure at `scale` rows: full outer join, shared
/// columns, 30% row overlap, a private column per side.
metadata::DiMetadata MakeScaledRunningExample(size_t scale) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kFullOuterJoin;
  spec.base_rows = scale;
  spec.other_rows = scale * 3 / 4;
  spec.base_features = 1;   // hr
  spec.other_features = 1;  // o
  spec.shared_features = 2;  // m, a analogues
  spec.match_fraction = 0.3;
  spec.row_overlap = 0.4;
  spec.seed = 404;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return std::move(metadata).ValueOrDie();
}

void BM_LmmAmalurRewrite(benchmark::State& state) {
  const size_t scale = static_cast<size_t>(state.range(0));
  factorized::FactorizedTable table(MakeScaledRunningExample(scale));
  Rng rng(1);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.LeftMultiply(x));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.rows()));
}

void BM_LmmMaterialized(benchmark::State& state) {
  const size_t scale = static_cast<size_t>(state.range(0));
  factorized::FactorizedTable table(MakeScaledRunningExample(scale));
  la::DenseMatrix dense = table.Materialize();
  Rng rng(1);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(dense.cols(), 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.Multiply(x));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dense.rows()));
}

void BM_LmmMaterializeThenMultiply(benchmark::State& state) {
  // The true materialized path cost: build T, then multiply.
  const size_t scale = static_cast<size_t>(state.range(0));
  metadata::DiMetadata metadata = MakeScaledRunningExample(scale);
  Rng rng(1);
  la::DenseMatrix x =
      la::DenseMatrix::RandomGaussian(metadata.target_cols(), 4, &rng);
  for (auto _ : state) {
    la::DenseMatrix dense = metadata.MaterializeTargetMatrix();
    benchmark::DoNotOptimize(dense.Multiply(x));
  }
}

void BM_LmmMorpheusRewrite(benchmark::State& state) {
  // Rule (1) without redundancy handling — reference speed only.
  const size_t scale = static_cast<size_t>(state.range(0));
  factorized::MorpheusReference table(MakeScaledRunningExample(scale));
  Rng rng(1);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.LeftMultiply(x));
  }
}

void BM_TransposeLmmAmalurRewrite(benchmark::State& state) {
  const size_t scale = static_cast<size_t>(state.range(0));
  factorized::FactorizedTable table(MakeScaledRunningExample(scale));
  Rng rng(2);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.rows(), 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.TransposeLeftMultiply(x));
  }
}

void BM_TransposeLmmMaterialized(benchmark::State& state) {
  const size_t scale = static_cast<size_t>(state.range(0));
  factorized::FactorizedTable table(MakeScaledRunningExample(scale));
  la::DenseMatrix dense = table.Materialize();
  Rng rng(2);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(dense.rows(), 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.TransposeMultiply(x));
  }
}

}  // namespace

BENCHMARK(BM_LmmAmalurRewrite)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_LmmMaterialized)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_LmmMaterializeThenMultiply)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_LmmMorpheusRewrite)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_TransposeLmmAmalurRewrite)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_TransposeLmmMaterialized)->Arg(1000)->Arg(10000)->Arg(100000);

BENCHMARK_MAIN();
