// Reproduces the §V federated-learning experiment: vertical federated
// linear regression (FLR) driven by DI metadata. The harness reports, per
// configuration, the training loss parity with centralized learning, the
// communication volume, and the encryption overhead of the Paillier
// protocol vs plaintext wires — the trade-off §V.B highlights ("encryption
// often brings tremendous computation overhead ... it is unclear how much
// overhead the encryption of DI metadata will bring").

#include <cstdio>

#include "common/stopwatch.h"
#include "factorized/scenario_builder.h"
#include "federated/hfl.h"
#include "federated/vfl.h"
#include "ml/linear_models.h"
#include "ml/training_matrix.h"
#include "relational/generator.h"

namespace {

using namespace amalur;

void RunVflRow(size_t rows, size_t features_b, federated::VflPrivacy privacy,
               size_t iterations) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = rows;
  spec.other_rows = rows;
  spec.base_features = 3;
  spec.other_features = features_b;
  spec.seed = 55 + rows + features_b;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  auto alignment = federated::AlignForVfl(*metadata, 0);
  AMALUR_CHECK(alignment.ok()) << alignment.status();

  federated::VflOptions options;
  options.iterations = iterations;
  options.learning_rate = 0.1;
  options.privacy = privacy;
  federated::MessageBus bus;
  Stopwatch watch;
  auto result = federated::TrainVerticalFlr(
      alignment->xa, alignment->labels, alignment->xb, options, &bus);
  const double seconds = watch.ElapsedSeconds();
  AMALUR_CHECK(result.ok()) << result.status();

  // Centralized reference for loss parity.
  ml::MaterializedMatrix central_features(
      alignment->xa.ConcatColumns(alignment->xb));
  ml::GradientDescentOptions gd;
  gd.iterations = iterations;
  gd.learning_rate = 0.1;
  ml::LinearModel central =
      ml::TrainLinearRegression(central_features, alignment->labels, gd);

  std::printf("%6zu %6zu %10s %9.3f %12.4f %12.4f %12zu %6zu\n", rows,
              3 + features_b,
              privacy == federated::VflPrivacy::kPaillier ? "paillier"
                                                          : "plaintext",
              seconds, result->loss_history.back(),
              central.loss_history.back(), result->bytes_transferred,
              result->messages);
}

}  // namespace

int main() {
  std::printf("=== §V: vertical federated linear regression over silos ===\n\n");
  std::printf("%6s %6s %10s %9s %12s %12s %12s %6s\n", "rows", "feats", "wires",
              "time(s)", "fed loss", "central", "bytes", "msgs");

  const size_t kIterations = 25;
  for (size_t rows : {200, 500, 1000}) {
    RunVflRow(rows, 4, federated::VflPrivacy::kPlaintext, kIterations);
  }
  for (size_t rows : {200, 500, 1000}) {
    RunVflRow(rows, 4, federated::VflPrivacy::kPaillier, kIterations);
  }

  std::printf("\n=== Horizontal FedAvg (union scenario) ===\n\n");
  std::printf("%8s %8s %10s %12s %12s %12s\n", "parties", "rows/p",
              "aggregation", "loss first", "loss last", "bytes");
  for (bool secure : {false, true}) {
    const size_t parties = 4, rows_each = 500, features = 6;
    Rng rng(99);
    la::DenseMatrix w_true = la::DenseMatrix::RandomGaussian(features, 1, &rng);
    std::vector<federated::HflPartition> partitions;
    for (size_t p = 0; p < parties; ++p) {
      federated::HflPartition partition{
          la::DenseMatrix::RandomGaussian(rows_each, features, &rng),
          la::DenseMatrix(rows_each, 1)};
      partition.labels = partition.features.Multiply(w_true);
      for (size_t i = 0; i < rows_each; ++i) {
        partition.labels.At(i, 0) += 0.05 * rng.NextGaussian();
      }
      partitions.push_back(std::move(partition));
    }
    federated::HflOptions options;
    options.rounds = 40;
    options.local_epochs = 2;
    options.learning_rate = 0.2;
    options.secure_aggregation = secure;
    federated::MessageBus bus;
    auto result = federated::TrainHorizontalFlr(partitions, options, &bus);
    AMALUR_CHECK(result.ok()) << result.status();
    std::printf("%8zu %8zu %10s %12.4f %12.4f %12zu\n", parties, rows_each,
                secure ? "secure" : "plain", result->loss_history.front(),
                result->loss_history.back(), result->bytes_transferred);
  }
  std::printf(
      "\nExpected shape: federated loss tracks centralized loss (plaintext\n"
      "exactly, Paillier within fixed-point error); encrypted wires cost\n"
      "~2x bytes and orders of magnitude more compute.\n");
  return 0;
}
