// Serving-tier throughput experiment: for each Table I integration scenario
// a trained model is deployed into a `serving::ModelRegistry` and hammered
// with batched scoring requests from a growing set of client threads, once
// through the factorized partial-score cache (`PredictBatch`) and once
// through the dense materialized baseline (`PredictBatchDense`). The
// harness reports sustained QPS / rows-per-second and request-latency
// percentiles (p50/p99) per (scenario, mode, client count) and emits
// machine-readable `BENCH_serving.json` so the serving trajectory can be
// tracked across commits alongside the training benches.
//
// Note: throughput scaling is bounded by the cores actually present — on a
// single-core CI container all client counts serialize onto one core, so
// QPS stays flat (the numbers still track per-request cost regressions).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "core/amalur.h"
#include "relational/generator.h"
#include "serving/deployed_model.h"
#include "serving/model_registry.h"

namespace {

using namespace amalur;

/// Smoke mode divides every scenario's row counts by this factor (and
/// shrinks batch/request counts) so CI runs the full table in seconds.
size_t RowScale() { return bench::SmokeMode() ? 40 : 1; }

struct PreparedScenario {
  std::string name;  // table label
  std::string slug;  // json identifier
  std::unique_ptr<core::Amalur> system;
  core::IntegrationHandle integration;
};

core::Amalur* NewSystem(std::vector<PreparedScenario>* out, const char* name,
                        const char* slug) {
  // Generic short column names (x0, z0, u0...) need strong evidence to
  // match; a stricter threshold keeps the key match and rejects noise.
  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  out->push_back({name, slug, std::make_unique<core::Amalur>(options), {}});
  return out->back().system.get();
}

void FinishScenario(std::vector<PreparedScenario>* out,
                    const core::IntegrationSpec& spec) {
  auto integration = out->back().system->Integrate(spec);
  AMALUR_CHECK(integration.ok()) << integration.status();
  out->back().integration = *std::move(integration);
}

/// The same seven Table I scenarios as bench_table1_scenarios.cc (same
/// seeds and shapes), so the serving numbers line up with the training ones.
std::vector<PreparedScenario> MakeScenarios() {
  std::vector<PreparedScenario> out;
  const auto scaled = [](size_t rows) {
    return std::max<size_t>(2, rows / RowScale());
  };

  const auto pair_scenario = [&out, &scaled](const char* name,
                                             const char* slug,
                                             rel::SiloPairSpec spec) {
    spec.base_rows = scaled(spec.base_rows);
    spec.other_rows = scaled(spec.other_rows);
    core::Amalur* system = NewSystem(&out, name, slug);
    rel::SiloPair pair = rel::GenerateSiloPair(spec);
    AMALUR_CHECK_OK(
        system->catalog()->RegisterSource({"S1", pair.base, "silo-1", false}));
    AMALUR_CHECK_OK(
        system->catalog()->RegisterSource({"S2", pair.other, "silo-2", false}));
    core::IntegrationSpec integration_spec;
    integration_spec.sources = {"S1", "S2"};
    integration_spec.relationships = {spec.kind};
    FinishScenario(&out, integration_spec);
  };

  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kFullOuterJoin;
    spec.base_rows = 20000;
    spec.other_rows = 8000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.shared_features = 2;
    spec.match_fraction = 0.5;
    spec.row_overlap = 0.5;
    spec.seed = 11;
    pair_scenario("1 full outer join", "full_outer_join", spec);
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kInnerJoin;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.match_fraction = 1.0;
    spec.row_overlap = 1.0;
    spec.seed = 12;
    pair_scenario("2 inner join     ", "inner_join", spec);
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kLeftJoin;
    spec.base_rows = 40000;
    spec.other_rows = 4000;  // fan-out 10
    spec.base_features = 2;
    spec.other_features = 60;
    spec.seed = 13;
    pair_scenario("3 left join      ", "left_join", spec);
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kUnion;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 0;
    spec.other_features = 0;
    spec.shared_features = 30;
    spec.match_fraction = 0.0;
    spec.row_overlap = 0.0;
    spec.other_has_label = true;
    spec.seed = 14;
    pair_scenario("4 union          ", "union", spec);
  }
  {
    rel::SnowflakeSpec spec;
    spec.fact_rows = scaled(40000);
    spec.fact_features = 2;
    spec.level_rows = {scaled(2000), scaled(50)};
    spec.level_features = {30, 20};
    spec.seed = 15;
    rel::Snowflake snowflake = rel::GenerateSnowflake(spec);
    core::Amalur* system = NewSystem(&out, "5 snowflake      ", "snowflake");
    for (const rel::Table& table : snowflake.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact", "dim0", rel::JoinKind::kLeftJoin},
                              {"dim0", "dim1", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  {
    rel::UnionOfStarsSpec spec;
    spec.shards = 2;
    spec.fact_rows = scaled(20000);
    spec.fact_features = 2;
    spec.dim_rows = scaled(1000);
    spec.dim_features = 30;
    spec.seed = 16;
    rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);
    core::Amalur* system =
        NewSystem(&out, "6 union of stars ", "union_of_stars");
    for (const rel::Table& table : scenario.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                              {"fact0", "fact1", rel::JoinKind::kUnion},
                              {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  {
    rel::ConformedSnowflakeSpec spec;
    spec.fact_rows = scaled(40000);
    spec.fact_features = 2;
    spec.branches = 2;
    spec.branch_rows = scaled(1000);
    spec.branch_features = 20;
    spec.shared_rows = scaled(50);
    spec.shared_features = 20;
    spec.seed = 17;
    rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);
    core::Amalur* system =
        NewSystem(&out, "7 conformed snflk", "conformed_snowflake");
    for (const rel::Table& table : scenario.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact", "branch0", rel::JoinKind::kLeftJoin},
                              {"fact", "branch1", rel::JoinKind::kLeftJoin},
                              {"branch0", "shared", rel::JoinKind::kLeftJoin},
                              {"branch1", "shared", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  return out;
}

struct Measurement {
  std::string scenario;
  std::string mode;  // "factorized" | "dense"
  size_t client_threads = 0;
  size_t batch_rows = 0;
  size_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double rows_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<double>* latencies, double fraction) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  size_t index = static_cast<size_t>(fraction *
                                     static_cast<double>(latencies->size()));
  if (index >= latencies->size()) index = latencies->size() - 1;
  return (*latencies)[index] * 1e3;
}

/// Runs `clients` threads, each issuing `requests_per_client` batched
/// scoring requests against the deployment resolved from the registry, and
/// returns the aggregate measurement. Row choice is deterministic per
/// (client, request) so every run scores identical batches.
Measurement RunLoad(const serving::ModelRegistry& registry,
                    const PreparedScenario& scenario, bool dense,
                    size_t clients, size_t requests_per_client,
                    size_t batch_rows) {
  std::vector<std::vector<double>> latencies(clients);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Each client is one core's worth of work: intra-batch fan-out would
      // make concurrent clients fight over the pool and blur the scaling
      // signal, so batches score serially inside a client.
      common::ScopedNumThreads one(1);
      auto model = registry.Get("scorer");
      AMALUR_CHECK(model.ok()) << model.status();
      const size_t rows = (*model)->rows();
      std::vector<serving::RowRef> batch(batch_rows);
      latencies[c].reserve(requests_per_client);
      for (size_t r = 0; r < requests_per_client; ++r) {
        for (size_t j = 0; j < batch_rows; ++j) {
          batch[j].row = (c * 100003 + r * 8191 + j * 31) % rows;
        }
        Stopwatch request;
        auto scores = dense ? (*model)->PredictBatchDense(batch)
                            : (*model)->PredictBatch(batch);
        latencies[c].push_back(request.ElapsedSeconds());
        AMALUR_CHECK(scores.ok()) << scores.status();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> merged;
  for (const std::vector<double>& per_client : latencies) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  Measurement m;
  m.scenario = scenario.slug;
  m.mode = dense ? "dense" : "factorized";
  m.client_threads = clients;
  m.batch_rows = batch_rows;
  m.requests = merged.size();
  m.seconds = seconds;
  m.qps = static_cast<double>(merged.size()) / std::max(seconds, 1e-12);
  m.rows_per_sec = m.qps * static_cast<double>(batch_rows);
  m.p50_ms = PercentileMs(&merged, 0.50);
  m.p99_ms = PercentileMs(&merged, 0.99);
  return m;
}

void WriteJson(const std::vector<Measurement>& measurements,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(out,
                 "  {\"scenario\": \"%s\", \"mode\": \"%s\", "
                 "\"client_threads\": %zu, \"batch_rows\": %zu, "
                 "\"requests\": %zu, \"seconds\": %.6f, \"qps\": %.1f, "
                 "\"rows_per_sec\": %.1f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f}%s\n",
                 m.scenario.c_str(), m.mode.c_str(), m.client_threads,
                 m.batch_rows, m.requests, m.seconds, m.qps, m.rows_per_sec,
                 m.p50_ms, m.p99_ms,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const size_t kBatchRows = smoke ? 32 : 256;
  const size_t kRequestsPerClient = smoke ? 16 : 64;
  const std::vector<size_t> client_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};

  std::printf("=== Serving throughput: batched scoring vs client threads ===\n");
  std::printf(
      "(one deployment per Table I scenario, %zu-row batches, %zu requests\n"
      " per client; factorized = partial-score cache, dense = materialized\n"
      " baseline%s; hardware concurrency here: %u — on a 1-core container\n"
      " all client counts serialize, so QPS stays flat)\n\n",
      kBatchRows, kRequestsPerClient,
      smoke ? "; SMOKE MODE — sizes scaled down" : "",
      std::thread::hardware_concurrency());
  std::printf("%-18s %11s %8s %10s %10s %9s %9s\n", "scenario", "mode",
              "clients", "qps", "rows/s", "p50 (ms)", "p99 (ms)");

  std::vector<Measurement> measurements;
  for (PreparedScenario& scenario : MakeScenarios()) {
    core::TrainRequest request;
    request.label_column = "y";
    request.gd.iterations = smoke ? 5 : 20;
    request.gd.learning_rate = 0.05;
    request.force_strategy = core::ExecutionStrategy::kFactorize;
    auto model = scenario.system->Train(scenario.integration, request);
    AMALUR_CHECK(model.ok()) << model.status();

    serving::ModelRegistry registry;
    serving::DeployOptions options;
    options.enable_dense_scoring = true;  // the baseline needs the copy
    auto deployed = model->Deploy(&registry, "scorer", options);
    AMALUR_CHECK(deployed.ok()) << deployed.status();

    for (bool dense : {false, true}) {
      for (size_t clients : client_counts) {
        Measurement m = RunLoad(registry, scenario, dense, clients,
                                kRequestsPerClient, kBatchRows);
        std::printf("%-18s %11s %8zu %10.0f %10.0f %9.4f %9.4f\n",
                    scenario.name.c_str(), m.mode.c_str(), m.client_threads,
                    m.qps, m.rows_per_sec, m.p50_ms, m.p99_ms);
        measurements.push_back(std::move(m));
      }
    }
  }

  WriteJson(measurements, "BENCH_serving.json");
  std::printf(
      "\nWrote BENCH_serving.json (%zu measurements).\n"
      "Expected shape: the factorized partial-score cache serves each row\n"
      "with one lookup per silo, so its QPS beats the dense dot product\n"
      "wherever integration widened the target (fan-out joins); QPS grows\n"
      "with client threads until the physical cores are saturated.\n",
      measurements.size());
  return 0;
}
