// Parallel-runtime scaling experiment: for the Table I scenarios, trains
// factorized and materialized through the full Amalur facade at 1, 2, 4 and
// hardware-default threads (the `TrainRequest.num_threads` knob) and reports
// per-strategy speedup over the single-thread baseline. Alongside the
// human-readable table it emits machine-readable `BENCH_parallel.json`
// (scenario, threads, factorized/materialized seconds, speedups) so the
// perf trajectory of the runtime can be tracked across commits.
//
// Note: speedup is bounded by the cores actually present — on a single-core
// machine every thread count measures scheduling overhead, not scaling.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/amalur.h"
#include "relational/generator.h"

namespace {

using namespace amalur;

struct ScenarioRow {
  const char* name;     // table label
  const char* slug;     // json identifier
  rel::SiloPairSpec spec;
};

/// The Table I relationships, at the bench_table1_scenarios sizes. The left
/// join (fan-out 10) is the largest / the paper's headline factorized win.
std::vector<ScenarioRow> MakeScenarios() {
  std::vector<ScenarioRow> rows;
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kFullOuterJoin;
    spec.base_rows = 20000;
    spec.other_rows = 8000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.shared_features = 2;
    spec.match_fraction = 0.5;
    spec.row_overlap = 0.5;
    spec.seed = 11;
    rows.push_back({"1 full outer join", "full_outer_join", spec});
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kInnerJoin;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.match_fraction = 1.0;
    spec.row_overlap = 1.0;
    spec.seed = 12;
    rows.push_back({"2 inner join     ", "inner_join", spec});
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kLeftJoin;
    spec.base_rows = 40000;
    spec.other_rows = 4000;  // fan-out 10
    spec.base_features = 2;
    spec.other_features = 60;
    spec.seed = 13;
    rows.push_back({"3 left join      ", "left_join", spec});
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kUnion;
    spec.base_rows = 20000;
    spec.other_rows = 20000;
    spec.base_features = 0;
    spec.other_features = 0;
    spec.shared_features = 30;
    spec.match_fraction = 0.0;
    spec.row_overlap = 0.0;
    spec.other_has_label = true;
    spec.seed = 14;
    rows.push_back({"4 union          ", "union", spec});
  }
  return rows;
}

/// Median training seconds under a forced strategy and thread count, all
/// through `Amalur::Train` (so the measurement includes exactly what the
/// system runs, kernel dispatch and all).
double MedianTrainSeconds(core::Amalur* system,
                          const core::IntegrationHandle& integration,
                          core::TrainRequest request,
                          core::ExecutionStrategy strategy, size_t num_threads,
                          size_t repeats) {
  request.force_strategy = strategy;
  request.num_threads = num_threads;
  std::vector<double> seconds;
  for (size_t r = 0; r < repeats; ++r) {
    auto model = system->Train(integration, request);
    AMALUR_CHECK(model.ok()) << model.status();
    // threads_used is the request capped by the pool's actual capacity.
    AMALUR_CHECK_EQ(
        model->outcome().threads_used,
        std::min(num_threads, common::ThreadPool::Global()->parallelism()))
        << "executor ignored the thread knob";
    seconds.push_back(model->outcome().seconds);
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

struct Measurement {
  std::string scenario;
  size_t threads = 1;
  double factorized_seconds = 0.0;
  double materialized_seconds = 0.0;
  double factorized_speedup = 1.0;
  double materialized_speedup = 1.0;
};

void WriteJson(const std::vector<Measurement>& measurements,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(out,
                 "  {\"scenario\": \"%s\", \"threads\": %zu, "
                 "\"factorized_seconds\": %.6f, \"materialized_seconds\": "
                 "%.6f, \"factorized_speedup\": %.3f, "
                 "\"materialized_speedup\": %.3f}%s\n",
                 m.scenario.c_str(), m.threads, m.factorized_seconds,
                 m.materialized_seconds, m.factorized_speedup,
                 m.materialized_speedup,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
}

}  // namespace

int main() {
  const size_t kIterations = 20;
  const size_t kRepeats = 3;

  // 1/2/4 plus the runtime default (env var or hardware), deduplicated.
  std::vector<size_t> thread_counts = {1, 2, 4};
  const size_t default_threads = common::DefaultNumThreads();
  if (!std::count(thread_counts.begin(), thread_counts.end(),
                  default_threads)) {
    thread_counts.push_back(default_threads);
  }

  std::printf("=== Parallel runtime scaling: Table I scenarios ===\n");
  std::printf("(GD linear regression, %zu iterations, medians of %zu runs;\n"
              " speedups relative to the same strategy at 1 thread;\n"
              " hardware concurrency here: %zu)\n\n",
              kIterations, kRepeats, default_threads);
  std::printf("%-18s %8s %10s %10s %9s %9s\n", "scenario", "threads",
              "fact (s)", "mat (s)", "fact spd", "mat spd");

  std::vector<Measurement> measurements;
  for (const ScenarioRow& row : MakeScenarios()) {
    rel::SiloPair pair = rel::GenerateSiloPair(row.spec);

    core::AmalurOptions system_options;
    system_options.matcher.threshold = 0.75;
    core::Amalur system(system_options);
    AMALUR_CHECK_OK(
        system.catalog()->RegisterSource({"S1", pair.base, "silo-1", false}));
    AMALUR_CHECK_OK(
        system.catalog()->RegisterSource({"S2", pair.other, "silo-2", false}));

    core::IntegrationSpec spec;
    spec.sources = {"S1", "S2"};
    spec.relationships = {row.spec.kind};
    auto integration = system.Integrate(spec);
    AMALUR_CHECK(integration.ok()) << integration.status();

    core::TrainRequest request;
    request.label_column = "y";
    request.gd.iterations = kIterations;
    request.gd.learning_rate = 0.05;

    double fact_base = 0.0, mat_base = 0.0;
    for (size_t threads : thread_counts) {
      Measurement m;
      m.scenario = row.slug;
      m.threads = threads;
      m.factorized_seconds = MedianTrainSeconds(
          &system, *integration, request, core::ExecutionStrategy::kFactorize,
          threads, kRepeats);
      m.materialized_seconds = MedianTrainSeconds(
          &system, *integration, request,
          core::ExecutionStrategy::kMaterialize, threads, kRepeats);
      if (threads == 1) {
        fact_base = m.factorized_seconds;
        mat_base = m.materialized_seconds;
      }
      m.factorized_speedup =
          fact_base / std::max(m.factorized_seconds, 1e-12);
      m.materialized_speedup =
          mat_base / std::max(m.materialized_seconds, 1e-12);
      measurements.push_back(m);

      std::printf("%-18s %8zu %10.4f %10.4f %8.2fx %8.2fx\n", row.name,
                  threads, m.factorized_seconds, m.materialized_seconds,
                  m.factorized_speedup, m.materialized_speedup);
    }
  }

  WriteJson(measurements, "BENCH_parallel.json");
  std::printf("\nWrote BENCH_parallel.json (%zu measurements).\n",
              measurements.size());
  return 0;
}
