// Federated learning (use case 2, §V): two banks hold vertically
// partitioned features about shared customers and cannot move raw data.
// Amalur integrates the silos virtually (metadata only), the optimizer is
// forced to a federated plan by the privacy constraint, and training runs
// as vertical federated linear regression — first in plaintext, then with
// Paillier-encrypted exchanges to show the §V.B encryption overhead.
// A horizontal (FedAvg) run over row-partitioned branches, an n-silo
// privacy-constrained snowflake (three parties, composed indicator blocks)
// and a union-of-stars scenario that federates horizontally per shard —
// all through the same `Amalur::Train` facade — close the tour.

#include <cstdio>

#include "core/amalur.h"
#include "federated/hfl.h"
#include "federated/vfl.h"
#include "relational/generator.h"

int main() {
  using namespace amalur;

  // Shared customers, disjoint feature sets (inner-join VFL; Example 2).
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 400;
  spec.other_rows = 400;
  spec.base_features = 3;   // bank A: balances, income, tenure
  spec.other_features = 4;  // bank B: card spend categories
  spec.seed = 7;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  core::Amalur system;
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"bank_a", pair.base, "bank-a-dc", /*privacy_sensitive=*/true}));
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"bank_b", pair.other, "bank-b-dc", /*privacy_sensitive=*/true}));

  core::IntegrationSpec spec2;
  spec2.name = "joint-customers";
  spec2.sources = {"bank_a", "bank_b"};
  spec2.relationships = {rel::JoinKind::kInnerJoin};
  auto integration = system.Integrate(spec2);
  AMALUR_CHECK(integration.ok()) << integration.status();
  core::Plan plan = system.Explain(*integration);
  std::printf("Optimizer: %s\n\n", plan.explanation.c_str());

  // --- Vertical FLR through the system facade (plaintext wires).
  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 80;
  request.gd.learning_rate = 0.1;
  auto model = system.Train(*integration, request, "joint-risk-model");
  AMALUR_CHECK(model.ok()) << model.status();
  const core::TrainOutcome& outcome = model->outcome();
  std::printf("VFL (plaintext wires): loss %.4f -> %.4f, %zu bytes moved\n",
              outcome.loss_history.front(), outcome.loss_history.back(),
              outcome.bytes_transferred);

  // --- The same protocol with Paillier-encrypted residual/gradient
  // exchange: identical learning curve shape, heavier wires.
  auto alignment = federated::AlignForVfl(integration->metadata, 0);
  AMALUR_CHECK(alignment.ok()) << alignment.status();
  federated::VflOptions secure;
  secure.iterations = 20;  // homomorphic ops are costly; fewer steps suffice
  secure.learning_rate = 0.1;
  secure.privacy = federated::VflPrivacy::kPaillier;
  federated::MessageBus secure_bus;
  auto encrypted = federated::TrainVerticalFlr(
      alignment->xa, alignment->labels, alignment->xb, secure, &secure_bus);
  AMALUR_CHECK(encrypted.ok()) << encrypted.status();

  federated::VflOptions clear = secure;
  clear.privacy = federated::VflPrivacy::kPlaintext;
  federated::MessageBus clear_bus;
  auto plaintext = federated::TrainVerticalFlr(
      alignment->xa, alignment->labels, alignment->xb, clear, &clear_bus);
  AMALUR_CHECK(plaintext.ok()) << plaintext.status();

  std::printf("\n=== Encryption overhead (%zu iterations) ===\n",
              secure.iterations);
  std::printf("  plaintext: %8zu bytes, %4zu messages, loss %.4f\n",
              plaintext->bytes_transferred, plaintext->messages,
              plaintext->loss_history.back());
  std::printf("  paillier : %8zu bytes, %4zu messages, loss %.4f\n",
              encrypted->bytes_transferred, encrypted->messages,
              encrypted->loss_history.back());
  std::printf("  blow-up  : %.1fx bytes\n\n",
              static_cast<double>(encrypted->bytes_transferred) /
                  static_cast<double>(plaintext->bytes_transferred));

  // --- Horizontal FL: three branches hold row partitions of one schema.
  std::vector<federated::HflPartition> branches;
  for (uint64_t branch = 0; branch < 3; ++branch) {
    rel::Table t = rel::GenerateTable("branch", 200, 5, 100 + branch);
    federated::HflPartition partition{*t.ToMatrix({2, 3, 4, 5, 6}),
                                      *t.ToMatrix({1})};
    branches.push_back(std::move(partition));
  }
  federated::HflOptions hfl;
  hfl.rounds = 40;
  hfl.local_epochs = 2;
  hfl.learning_rate = 0.2;
  hfl.secure_aggregation = true;
  federated::MessageBus hfl_bus;
  auto global = federated::TrainHorizontalFlr(branches, hfl, &hfl_bus);
  AMALUR_CHECK(global.ok()) << global.status();
  std::printf("=== Horizontal FedAvg (3 branches, secure aggregation) ===\n");
  std::printf("  loss %.4f -> %.4f over %zu rounds, %zu bytes moved\n",
              global->loss_history.front(), global->loss_history.back(),
              hfl.rounds, global->bytes_transferred);

  // --- N-silo vertical federation through the facade: a snowflake whose
  // three silos (fact -> dim0 -> dim1) all refuse data movement. The leaf
  // silo participates through the indicator composed along the chain; the
  // executed plan reports silos, rounds and bytes.
  rel::SnowflakeSpec snow_spec;
  snow_spec.fact_rows = 300;
  snow_spec.fact_features = 2;
  snow_spec.level_rows = {30, 6};
  snow_spec.level_features = {3, 2};
  snow_spec.seed = 21;
  rel::Snowflake snowflake = rel::GenerateSnowflake(snow_spec);
  core::AmalurOptions snow_options;
  snow_options.matcher.threshold = 0.75;
  core::Amalur snow_system(snow_options);
  for (const rel::Table& table : snowflake.tables) {
    AMALUR_CHECK_OK(snow_system.catalog()->RegisterSource(
        {table.name(), table, "silo", /*privacy_sensitive=*/true}));
  }
  core::IntegrationSpec snow_spec2;
  snow_spec2.edges = {{"fact", "dim0", rel::JoinKind::kLeftJoin},
                      {"dim0", "dim1", rel::JoinKind::kLeftJoin}};
  auto snow_integration = snow_system.Integrate(snow_spec2);
  AMALUR_CHECK(snow_integration.ok()) << snow_integration.status();
  core::TrainRequest snow_request;
  snow_request.label_column = "y";
  snow_request.gd.iterations = 50;
  snow_request.gd.learning_rate = 0.05;
  auto snow_model = snow_system.Train(*snow_integration, snow_request);
  AMALUR_CHECK(snow_model.ok()) << snow_model.status();
  std::printf("\n=== N-silo vertical FLR (privacy-constrained snowflake) ===\n");
  std::printf("  %s\n", snow_model->plan().explanation.c_str());
  std::printf("  loss %.4f -> %.4f across %zu silos\n",
              snow_model->outcome().loss_history.front(),
              snow_model->outcome().loss_history.back(),
              snow_model->outcome().federated_silos);

  // --- Union-of-stars: horizontally partitioned shards federate with one
  // FedAvg participant per shard — no cross-shard rows are ever assembled.
  rel::UnionOfStarsSpec union_spec;
  union_spec.shards = 2;
  union_spec.fact_rows = 200;
  union_spec.fact_features = 2;
  union_spec.dim_rows = 20;
  union_spec.dim_features = 3;
  union_spec.seed = 27;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(union_spec);
  core::Amalur shard_system(snow_options);
  for (const rel::Table& table : scenario.tables) {
    AMALUR_CHECK_OK(shard_system.catalog()->RegisterSource(
        {table.name(), table, "shard-silo", /*privacy_sensitive=*/true}));
  }
  core::IntegrationSpec shard_spec;
  shard_spec.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                      {"fact0", "fact1", rel::JoinKind::kUnion},
                      {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
  auto shard_integration = shard_system.Integrate(shard_spec);
  AMALUR_CHECK(shard_integration.ok()) << shard_integration.status();
  auto shard_model = shard_system.Train(*shard_integration, snow_request);
  AMALUR_CHECK(shard_model.ok()) << shard_model.status();
  std::printf("\n=== Per-shard FedAvg (privacy-constrained union-of-stars) ===\n");
  std::printf("  %s\n", shard_model->plan().explanation.c_str());
  std::printf("  loss %.4f -> %.4f across %zu shards\n",
              shard_model->outcome().loss_history.front(),
              shard_model->outcome().loss_history.back(),
              shard_model->outcome().federated_silos);
  return 0;
}
