// Cost explorer: walks the tuple-ratio × feature-ratio plane of Figure 5
// and prints, for every cell, what each estimator decides — the Morpheus
// shape heuristic [27] vs Amalur's DI-metadata cost model — next to the
// measured winner. A compact way to see Areas I/II/III and where the two
// estimators part ways.

#include <cstdio>

#include "common/stopwatch.h"
#include "cost/amalur_cost_model.h"
#include "cost/morpheus_heuristic.h"
#include "factorized/scenario_builder.h"
#include "ml/linear_models.h"
#include "ml/training_matrix.h"
#include "relational/generator.h"

namespace {

using namespace amalur;

/// Measures both strategies on one scenario and returns the winner.
cost::Strategy MeasureWinner(const metadata::DiMetadata& metadata,
                             size_t iterations) {
  ml::GradientDescentOptions gd;
  gd.iterations = iterations;
  gd.learning_rate = 0.05;

  Stopwatch watch;
  auto table = std::make_shared<factorized::FactorizedTable>(metadata);
  ml::FactorizedFeatures fact_features(table, 0);
  la::DenseMatrix labels = fact_features.Labels();
  ml::TrainLinearRegression(fact_features, labels, gd);
  const double factorized_seconds = watch.ElapsedSeconds();

  watch.Restart();
  la::DenseMatrix target = metadata.MaterializeTargetMatrix();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
  ml::MaterializedMatrix mat_features(target.SelectColumns(feature_cols));
  ml::TrainLinearRegression(mat_features, labels, gd);
  const double materialized_seconds = watch.ElapsedSeconds();

  return factorized_seconds < materialized_seconds
             ? cost::Strategy::kFactorize
             : cost::Strategy::kMaterialize;
}

char Letter(cost::Strategy s) {
  return s == cost::Strategy::kFactorize ? 'F' : 'M';
}

}  // namespace

int main() {
  const size_t kIterations = 20;
  const size_t kOtherRows = 400;
  const double tuple_ratios[] = {1, 2, 4, 8, 16};
  const double feature_ratios[] = {1, 2, 5, 10, 25};

  cost::MorpheusHeuristic morpheus;
  cost::AmalurCostModelOptions options;
  options.training_iterations = static_cast<double>(kIterations);
  cost::AmalurCostModel amalur_model(options);

  std::printf("Each cell: measured / morpheus / amalur  (F = factorize, "
              "M = materialize)\n\n");
  std::printf("%8s |", "TR \\ FR");
  for (double fr : feature_ratios) std::printf("  %5.0f  |", fr);
  std::printf("\n---------+");
  for (size_t i = 0; i < std::size(feature_ratios); ++i) std::printf("---------+");
  std::printf("\n");

  for (double tr : tuple_ratios) {
    std::printf("%8.0f |", tr);
    for (double fr : feature_ratios) {
      rel::SiloPairSpec spec;
      spec.kind = rel::JoinKind::kLeftJoin;
      spec.other_rows = kOtherRows;
      spec.base_rows = static_cast<size_t>(tr * kOtherRows);
      spec.base_features = 2;
      spec.other_features = static_cast<size_t>(fr * 2);
      spec.seed = static_cast<uint64_t>(tr * 1000 + fr);
      rel::SiloPair pair = rel::GenerateSiloPair(spec);
      auto metadata = factorized::DerivePairMetadata(pair);
      AMALUR_CHECK(metadata.ok()) << metadata.status();
      const cost::CostFeatures features =
          cost::CostFeatures::FromMetadata(*metadata);

      const char measured = Letter(MeasureWinner(*metadata, kIterations));
      const char m = Letter(morpheus.Decide(features));
      const char a = Letter(amalur_model.Decide(features));
      std::printf("  %c/%c/%c  |", measured, m, a);
    }
    std::printf("\n");
  }
  std::printf("\nRead: where the middle letter (Morpheus) disagrees with the "
              "first (measured)\nbut the last (Amalur) agrees, the DI-metadata "
              "cost model recovered an Area III case.\n");
  return 0;
}
