// Quickstart: the paper's running example (Figures 2 and 4), end to end.
//
// Two hospital departments hold patient tables: the ER department's
// S1(m, n, a, hr) with the mortality label, and the pulmonary department's
// S2(m, n, a, o, dd) with blood-oxygen readings. Amalur discovers the shared
// columns, synthesizes the mediated schema T(m, a, hr, o), resolves Jane as
// the shared entity, derives the mapping/indicator/redundancy matrices, and
// trains a mortality model — choosing factorized or materialized execution
// by cost. The trained ModelHandle then serves predictions and an
// evaluation over the materialized target.

#include <cstdio>

#include "core/amalur.h"
#include "integration/running_example.h"

int main() {
  using namespace amalur;

  integration::RunningExample example = integration::MakeRunningExample();
  std::printf("=== Source silos ===\n%s\n%s\n",
              example.s1.ToString().c_str(), example.s2.ToString().c_str());

  core::Amalur system;
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"S1", example.s1, "hospital-er", /*privacy_sensitive=*/false}));
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"S2", example.s2, "hospital-pulmonary", /*privacy_sensitive=*/false}));

  core::IntegrationSpec spec;
  spec.name = "er-pulmonary";  // stored in the catalog for later reuse
  spec.sources = {"S1", "S2"};
  spec.relationships = {rel::JoinKind::kFullOuterJoin};
  auto integration = system.Integrate(spec);
  AMALUR_CHECK(integration.ok()) << integration.status();

  std::printf("=== Discovered column matches ===\n");
  for (const auto& match : integration->edge_matches[0]) {
    std::printf("  S1.%s  ~  S2.%s   (score %.2f)\n",
                example.s1.column(match.left_column).name().c_str(),
                example.s2.column(match.right_column).name().c_str(),
                match.score);
  }

  std::printf("\n=== Generated schema mapping (s-t tgds, Table I) ===\n%s\n",
              integration->mapping.ToString().c_str());

  std::printf("=== Entity resolution ===\n");
  for (const auto& [l, r] : integration->matchings[0].matched) {
    std::printf("  S1 row %zu  ==  S2 row %zu   (%s)\n", l, r,
                example.s1.column(1).GetValue(l).str().c_str());
  }

  const metadata::DiMetadata& md = integration->metadata;
  std::printf("\n=== The three matrices (Figure 4) ===\n");
  for (size_t k = 0; k < md.num_sources(); ++k) {
    std::printf("  %s: %s, %s, %s\n", md.source(k).name.c_str(),
                md.source(k).mapping.ToString().c_str(),
                md.source(k).indicator.ToString().c_str(),
                md.source(k).redundancy.ToString().c_str());
  }
  std::printf("\nMaterialized target (matrix form):\n%s\n",
              md.MaterializeTargetMatrix().ToString().c_str());

  core::Plan plan = system.Explain(*integration);
  std::printf("=== Optimizer ===\n  %s\n\n", plan.explanation.c_str());

  core::TrainRequest request;
  request.task = core::TrainingTask::kLogisticRegression;
  request.label_column = "m";
  request.gd.iterations = 500;
  request.gd.learning_rate = 0.0001;  // features are unnormalized (age, HR, O2)
  auto model = system.Train(*integration, request, "mortality-model");
  AMALUR_CHECK(model.ok()) << model.status();

  std::printf("=== Trained mortality model (%s) ===\n",
              core::ExecutionStrategyToString(model->outcome().strategy_used));
  std::printf("  final log-loss: %.4f   (started at %.4f)\n",
              model->outcome().loss_history.back(),
              model->outcome().loss_history.front());
  std::printf("  weights (a, hr, o): ");
  for (size_t j = 0; j < model->weights().rows(); ++j) {
    std::printf("%+.4f ", model->weights().At(j, 0));
  }

  // Serve the model on relational data: score the materialized target.
  rel::Table target = rel::Table::FromMatrix(
      "target", md.MaterializeTargetMatrix(), md.target_schema().Names());
  auto report = model->Evaluate(target);
  AMALUR_CHECK(report.ok()) << report.status();
  std::printf("\n\n=== In-sample evaluation ===\n");
  std::printf("  rows %zu, accuracy %.2f, log-loss %.4f\n", report->rows,
              report->accuracy, report->log_loss);
  std::printf("\nModel registered as 'mortality-model'; integration "
              "registered as 'er-pulmonary' (%zu in catalog).\n",
              system.catalog()->IntegrationNames().size());
  return 0;
}
