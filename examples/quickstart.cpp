// Quickstart: the paper's running example (Figures 2 and 4), end to end.
//
// Two hospital departments hold patient tables: the ER department's
// S1(m, n, a, hr) with the mortality label, and the pulmonary department's
// S2(m, n, a, o, dd) with blood-oxygen readings. Amalur discovers the shared
// columns, synthesizes the mediated schema T(m, a, hr, o), resolves Jane as
// the shared entity, derives the mapping/indicator/redundancy matrices, and
// trains a mortality model — choosing factorized or materialized execution
// by cost.

#include <cstdio>

#include "core/amalur.h"
#include "integration/running_example.h"

int main() {
  using namespace amalur;

  integration::RunningExample example = integration::MakeRunningExample();
  std::printf("=== Source silos ===\n%s\n%s\n",
              example.s1.ToString().c_str(), example.s2.ToString().c_str());

  core::Amalur system;
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"S1", example.s1, "hospital-er", /*privacy_sensitive=*/false}));
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"S2", example.s2, "hospital-pulmonary", /*privacy_sensitive=*/false}));

  auto integration =
      system.Integrate("S1", "S2", rel::JoinKind::kFullOuterJoin);
  AMALUR_CHECK(integration.ok()) << integration.status();

  std::printf("=== Discovered column matches ===\n");
  for (const auto& match : integration->column_matches) {
    std::printf("  S1.%s  ~  S2.%s   (score %.2f)\n",
                example.s1.column(match.left_column).name().c_str(),
                example.s2.column(match.right_column).name().c_str(),
                match.score);
  }

  std::printf("\n=== Generated schema mapping (s-t tgds, Table I) ===\n%s\n",
              integration->mapping.ToString().c_str());

  std::printf("=== Entity resolution ===\n");
  for (const auto& [l, r] : integration->matching.matched) {
    std::printf("  S1 row %zu  ==  S2 row %zu   (%s)\n", l, r,
                example.s1.column(1).GetValue(l).str().c_str());
  }

  const metadata::DiMetadata& md = integration->metadata;
  std::printf("\n=== The three matrices (Figure 4) ===\n");
  for (size_t k = 0; k < md.num_sources(); ++k) {
    std::printf("  %s: %s, %s, %s\n", md.source(k).name.c_str(),
                md.source(k).mapping.ToString().c_str(),
                md.source(k).indicator.ToString().c_str(),
                md.source(k).redundancy.ToString().c_str());
  }
  std::printf("\nMaterialized target (matrix form):\n%s\n",
              md.MaterializeTargetMatrix().ToString().c_str());

  core::Plan plan = system.PlanFor(*integration);
  std::printf("=== Optimizer ===\n  %s\n\n", plan.explanation.c_str());

  core::TrainRequest request;
  request.task = core::TrainingTask::kLogisticRegression;
  request.label_column = "m";
  request.gd.iterations = 500;
  request.gd.learning_rate = 0.0001;  // features are unnormalized (age, HR, O2)
  auto outcome = system.Train(*integration, request, "mortality-model");
  AMALUR_CHECK(outcome.ok()) << outcome.status();

  std::printf("=== Trained mortality model (%s) ===\n",
              core::ExecutionStrategyToString(outcome->strategy_used));
  std::printf("  final log-loss: %.4f   (started at %.4f)\n",
              outcome->loss_history.back(), outcome->loss_history.front());
  std::printf("  weights (a, hr, o): ");
  for (size_t j = 0; j < outcome->weights.rows(); ++j) {
    std::printf("%+.4f ", outcome->weights.At(j, 0));
  }
  std::printf("\n\nModel registered in the catalog as 'mortality-model'.\n");
  return 0;
}
