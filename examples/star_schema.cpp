// Multi-silo star schema: a fact table (insurance claims) joined to three
// dimension silos (patients, providers, regions). Shows the n-source
// generalization of the paper's two-table examples: one indicator/mapping/
// redundancy triple per silo, factorized training across all four at once,
// and the growing advantage over materialization as dimensions widen.

#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "cost/amalur_cost_model.h"
#include "factorized/factorized_table.h"
#include "metadata/di_metadata.h"
#include "ml/linear_models.h"
#include "ml/training_matrix.h"
#include "relational/join.h"

namespace {

using namespace amalur;

rel::Table MakeDimension(const std::string& name, const std::string& key,
                         size_t rows, size_t features, Rng* rng) {
  rel::Table table(name);
  std::vector<int64_t> keys(rows);
  for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
  AMALUR_CHECK_OK(table.AddColumn(rel::Column::FromInt64s(key, keys)));
  for (size_t f = 0; f < features; ++f) {
    std::vector<double> values(rows);
    for (double& v : values) v = rng->NextGaussian();
    AMALUR_CHECK_OK(table.AddColumn(rel::Column::FromDoubles(
        name.substr(0, 3) + "_" + std::to_string(f), values)));
  }
  return table;
}

}  // namespace

int main() {
  Rng rng(2026);
  const size_t kClaims = 60000;
  rel::Table patients = MakeDimension("patients", "patient_id", 6000, 12, &rng);
  rel::Table providers = MakeDimension("providers", "provider_id", 300, 8, &rng);
  rel::Table regions = MakeDimension("regions", "region_id", 50, 6, &rng);

  // Fact table: claims referencing all three dimensions.
  rel::Table claims("claims");
  {
    std::vector<int64_t> pid(kClaims), prid(kClaims), rid(kClaims);
    std::vector<double> amount(kClaims), cost(kClaims);
    for (size_t i = 0; i < kClaims; ++i) {
      pid[i] = static_cast<int64_t>(rng.NextUint64(6000));
      prid[i] = static_cast<int64_t>(rng.NextUint64(300));
      rid[i] = static_cast<int64_t>(rng.NextUint64(50));
      amount[i] = rng.NextGaussian();
      cost[i] = amount[i] * 1.7 + rng.NextGaussian() * 0.3;
    }
    AMALUR_CHECK_OK(claims.AddColumn(rel::Column::FromInt64s("patient_id", pid)));
    AMALUR_CHECK_OK(
        claims.AddColumn(rel::Column::FromInt64s("provider_id", prid)));
    AMALUR_CHECK_OK(claims.AddColumn(rel::Column::FromInt64s("region_id", rid)));
    AMALUR_CHECK_OK(claims.AddColumn(rel::Column::FromDoubles("cost", cost)));
    AMALUR_CHECK_OK(claims.AddColumn(rel::Column::FromDoubles("amount", amount)));
  }

  std::printf("Fact: claims %zu rows; dimensions: patients %zu, providers %zu, "
              "regions %zu\n\n",
              claims.NumRows(), patients.NumRows(), providers.NumRows(),
              regions.NumRows());

  // ---- Schema mapping: target = cost + amount + all dimension features.
  std::vector<std::string> target_names{"cost", "amount"};
  std::vector<integration::ColumnCorrespondence> fact_corr{
      {"cost", "cost"}, {"amount", "amount"}};
  auto add_dimension_corr = [&target_names](const rel::Table& dim) {
    std::vector<integration::ColumnCorrespondence> corr;
    for (size_t j = 1; j < dim.NumColumns(); ++j) {  // skip the key
      corr.push_back({dim.column(j).name(), dim.column(j).name()});
      target_names.push_back(dim.column(j).name());
    }
    return corr;
  };
  auto patients_corr = add_dimension_corr(patients);
  auto providers_corr = add_dimension_corr(providers);
  auto regions_corr = add_dimension_corr(regions);

  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{"claims", claims.schema(),
                                              fact_corr},
       integration::SchemaMapping::SourceSpec{"patients", patients.schema(),
                                              patients_corr},
       integration::SchemaMapping::SourceSpec{"providers", providers.schema(),
                                              providers_corr},
       integration::SchemaMapping::SourceSpec{"regions", regions.schema(),
                                              regions_corr}},
      rel::Schema::AllDouble(target_names),
      {{0, "patient_id", 1, "patient_id"},
       {0, "provider_id", 2, "provider_id"},
       {0, "region_id", 3, "region_id"}});
  AMALUR_CHECK(mapping.ok()) << mapping.status();

  // ---- Row matchings (key equality) and the star metadata.
  std::vector<rel::RowMatching> matchings;
  for (const auto& [dim, key] :
       std::vector<std::pair<const rel::Table*, std::string>>{
           {&patients, "patient_id"},
           {&providers, "provider_id"},
           {&regions, "region_id"}}) {
    auto matching = rel::MatchRowsOnKeys(claims, *dim, {key}, {key});
    AMALUR_CHECK(matching.ok()) << matching.status();
    matchings.push_back(std::move(matching).ValueOrDie());
  }
  auto metadata = metadata::DiMetadata::DeriveStar(
      *mapping, {&claims, &patients, &providers, &regions}, matchings);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  std::printf("Target: %zu x %zu; per-silo tuple ratios:", metadata->target_rows(),
              metadata->target_cols());
  for (size_t k = 1; k < metadata->num_sources(); ++k) {
    std::printf(" %s=%.0f", metadata->source(k).name.c_str(),
                metadata->TupleRatio(k));
  }
  std::printf("\n\n");

  // ---- Factorized vs materialized training over four silos.
  ml::GradientDescentOptions gd;
  gd.iterations = 25;
  gd.learning_rate = 0.05;

  Stopwatch watch;
  auto table = std::make_shared<factorized::FactorizedTable>(*metadata);
  ml::FactorizedFeatures features(table, 0);
  la::DenseMatrix labels = features.Labels();
  ml::LinearModel factorized_model =
      ml::TrainLinearRegression(features, labels, gd);
  const double factorized_seconds = watch.ElapsedSeconds();

  watch.Restart();
  la::DenseMatrix target = metadata->MaterializeTargetMatrix();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
  ml::MaterializedMatrix dense(target.SelectColumns(feature_cols));
  ml::LinearModel materialized_model =
      ml::TrainLinearRegression(dense, labels, gd);
  const double materialized_seconds = watch.ElapsedSeconds();

  std::printf("Factorized over 4 silos : %.3fs  (MSE %.4f)\n",
              factorized_seconds, factorized_model.loss_history.back());
  std::printf("Materialize then train  : %.3fs  (MSE %.4f)\n",
              materialized_seconds, materialized_model.loss_history.back());
  std::printf("Weight agreement        : %.2e\n",
              factorized_model.weights.MaxAbsDiff(materialized_model.weights));
  std::printf("Speedup                 : %.2fx\n",
              materialized_seconds / factorized_seconds);
  return 0;
}
