// Multi-silo star schema: a fact table (insurance claims) joined to three
// dimension silos (patients, providers, regions) — the n-source
// generalization of the paper's two-table examples, driven entirely through
// the system facade: register the silos, describe the scenario with an
// IntegrationSpec, and let Amalur discover the join keys, synthesize the
// target schema and derive one indicator/mapping/redundancy triple per
// silo. Training is forced onto both backends to show the growing
// factorization advantage as dimensions widen.

#include <cstdio>

#include "common/rng.h"
#include "core/amalur.h"
#include "relational/table.h"

namespace {

using namespace amalur;

rel::Table MakeDimension(const std::string& name, const std::string& key,
                         size_t rows, size_t features, Rng* rng) {
  rel::Table table(name);
  std::vector<int64_t> keys(rows);
  for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
  AMALUR_CHECK_OK(table.AddColumn(rel::Column::FromInt64s(key, keys)));
  for (size_t f = 0; f < features; ++f) {
    std::vector<double> values(rows);
    for (double& v : values) v = rng->NextGaussian();
    AMALUR_CHECK_OK(table.AddColumn(rel::Column::FromDoubles(
        name.substr(0, 3) + "_" + std::to_string(f), values)));
  }
  return table;
}

}  // namespace

int main() {
  Rng rng(2026);
  const size_t kClaims = 60000;
  rel::Table patients = MakeDimension("patients", "patient_id", 6000, 12, &rng);
  rel::Table providers = MakeDimension("providers", "provider_id", 300, 8, &rng);
  rel::Table regions = MakeDimension("regions", "region_id", 50, 6, &rng);

  // Fact table: claims referencing all three dimensions.
  rel::Table claims("claims");
  {
    std::vector<int64_t> pid(kClaims), prid(kClaims), rid(kClaims);
    std::vector<double> amount(kClaims), cost(kClaims);
    for (size_t i = 0; i < kClaims; ++i) {
      pid[i] = static_cast<int64_t>(rng.NextUint64(6000));
      prid[i] = static_cast<int64_t>(rng.NextUint64(300));
      rid[i] = static_cast<int64_t>(rng.NextUint64(50));
      amount[i] = rng.NextGaussian();
      cost[i] = amount[i] * 1.7 + rng.NextGaussian() * 0.3;
    }
    AMALUR_CHECK_OK(claims.AddColumn(rel::Column::FromInt64s("patient_id", pid)));
    AMALUR_CHECK_OK(
        claims.AddColumn(rel::Column::FromInt64s("provider_id", prid)));
    AMALUR_CHECK_OK(claims.AddColumn(rel::Column::FromInt64s("region_id", rid)));
    AMALUR_CHECK_OK(claims.AddColumn(rel::Column::FromDoubles("cost", cost)));
    AMALUR_CHECK_OK(claims.AddColumn(rel::Column::FromDoubles("amount", amount)));
  }

  std::printf("Fact: claims %zu rows; dimensions: patients %zu, providers %zu, "
              "regions %zu\n\n",
              claims.NumRows(), patients.NumRows(), providers.NumRows(),
              regions.NumRows());

  // ---- Register the silos and describe the star declaratively. The facade
  // discovers the *_id join keys by schema matching, keeps them out of the
  // feature space, and derives the per-silo metadata triples.
  core::Amalur system;
  AMALUR_CHECK_OK(system.catalog()->RegisterSource({"claims", claims,
                                                    "claims-dept", false}));
  AMALUR_CHECK_OK(system.catalog()->RegisterSource({"patients", patients,
                                                    "patient-registry", false}));
  AMALUR_CHECK_OK(system.catalog()->RegisterSource({"providers", providers,
                                                    "provider-registry", false}));
  AMALUR_CHECK_OK(system.catalog()->RegisterSource({"regions", regions,
                                                    "geo-service", false}));

  core::IntegrationSpec spec;
  spec.name = "claims-star";
  spec.sources = {"claims", "patients", "providers", "regions"};
  spec.relationships = {rel::JoinKind::kLeftJoin};
  auto integration = system.Integrate(spec);
  AMALUR_CHECK(integration.ok()) << integration.status();

  const metadata::DiMetadata& metadata = integration->metadata;
  std::printf("Target: %zu x %zu; per-silo tuple ratios:",
              metadata.target_rows(), metadata.target_cols());
  for (size_t k = 1; k < metadata.num_sources(); ++k) {
    std::printf(" %s=%.0f", metadata.source(k).name.c_str(),
                metadata.TupleRatio(k));
  }
  std::printf("\nOptimizer: %s\n\n", system.Explain(*integration).explanation.c_str());

  // ---- Factorized vs materialized training over four silos, both forced
  // through the same facade path.
  core::TrainRequest request;
  request.label_column = "cost";
  request.gd.iterations = 25;
  request.gd.learning_rate = 0.05;

  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto factorized = system.Train(*integration, request, "claims-cost-model");
  AMALUR_CHECK(factorized.ok()) << factorized.status();

  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto materialized = system.Train(*integration, request);
  AMALUR_CHECK(materialized.ok()) << materialized.status();

  std::printf("Factorized over 4 silos : %.3fs  (MSE %.4f)\n",
              factorized->outcome().seconds,
              factorized->outcome().loss_history.back());
  std::printf("Materialize then train  : %.3fs  (MSE %.4f)\n",
              materialized->outcome().seconds,
              materialized->outcome().loss_history.back());
  std::printf("Weight agreement        : %.2e\n",
              factorized->weights().MaxAbsDiff(materialized->weights()));
  std::printf("Speedup                 : %.2fx\n",
              materialized->outcome().seconds /
                  factorized->outcome().seconds);

  // ---- Serve the registered model in-sample: the factorized-plan model
  // scores the target rows straight off the silo matrices — the rT x cT
  // table is never materialized for serving either.
  auto report = factorized->Evaluate();
  AMALUR_CHECK(report.ok()) << report.status();
  std::printf("In-sample evaluation    : MSE %.4f over %zu rows "
              "(served factorized)\n",
              report->mse, report->rows);
  return 0;
}
