// Integration graphs: the edge-list `IntegrationSpec` on the scenarios the
// flat source list cannot express. A *snowflake* chains dimensions of
// dimensions (sales -> stores -> regions), so a fact row reaches the leaf
// dimension through two composed key hops; a *union-of-stars* stacks
// horizontally partitioned fact shards — each a star with its own private
// dimension — into one target (paper Table I's union relationship between
// silos that are themselves stars); a *conformed snowflake* is a DAG: one
// shared dimension (think a warehouse `date` or `region` table) referenced
// through several parents, integrated once. All run entirely through the
// facade: describe the graph as edges, and Amalur validates it, discovers
// the keys per edge, derives the composed/stacked/merged metadata and
// trains either factorized or materialized with identical results.

#include <cstdio>

#include "core/amalur.h"
#include "relational/generator.h"

namespace {

using namespace amalur;

void TrainBothWays(core::Amalur* system,
                   const core::IntegrationHandle& integration,
                   const char* label) {
  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 30;
  request.gd.learning_rate = 0.05;

  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto factorized = system->Train(integration, request);
  AMALUR_CHECK(factorized.ok()) << factorized.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto materialized = system->Train(integration, request);
  AMALUR_CHECK(materialized.ok()) << materialized.status();

  auto in_sample = factorized->Evaluate();  // served factorized, in-sample
  AMALUR_CHECK(in_sample.ok()) << in_sample.status();
  std::printf(
      "%s: factorized %.3fs vs materialized %.3fs, weight agreement %.2e,\n"
      "  in-sample MSE %.4f over %zu rows\n",
      label, factorized->outcome().seconds, materialized->outcome().seconds,
      factorized->weights().MaxAbsDiff(materialized->weights()),
      in_sample->mse, in_sample->rows);
}

}  // namespace

int main() {
  // Generic short column names need strong matching evidence.
  core::AmalurOptions options;
  options.matcher.threshold = 0.75;

  // ---- Snowflake: sales(40k) -> stores(2k) -> regions(50).
  {
    rel::SnowflakeSpec spec;
    spec.fact_rows = 40000;
    spec.fact_features = 2;
    spec.level_rows = {2000, 50};
    spec.level_features = {8, 6};
    spec.seed = 2026;
    rel::Snowflake snowflake = rel::GenerateSnowflake(spec);

    core::Amalur system(options);
    const char* roles[] = {"sales-dept", "store-registry", "geo-service"};
    for (size_t k = 0; k < snowflake.tables.size(); ++k) {
      AMALUR_CHECK_OK(system.catalog()->RegisterSource(
          {snowflake.tables[k].name(), snowflake.tables[k], roles[k], false}));
    }

    core::IntegrationSpec spec_graph;
    spec_graph.name = "sales-snowflake";
    spec_graph.edges = {{"fact", "dim0", rel::JoinKind::kLeftJoin},
                        {"dim0", "dim1", rel::JoinKind::kLeftJoin}};
    auto integration = system.Integrate(spec_graph);
    AMALUR_CHECK(integration.ok()) << integration.status();
    std::printf("Snowflake target %zu x %zu\n  %s\n",
                integration->metadata.target_rows(),
                integration->metadata.target_cols(),
                system.Explain(*integration).explanation.c_str());
    TrainBothWays(&system, *integration, "  snowflake");
  }

  // ---- Union-of-stars: three fact shards of 15k rows, each with its own
  // 500-row dimension (horizontally partitioned silos).
  {
    rel::UnionOfStarsSpec spec;
    spec.shards = 3;
    spec.fact_rows = 15000;
    spec.fact_features = 3;
    spec.dim_rows = 500;
    spec.dim_features = 10;
    spec.seed = 2027;
    rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);

    core::Amalur system(options);
    for (const rel::Table& table : scenario.tables) {
      AMALUR_CHECK_OK(
          system.catalog()->RegisterSource({table.name(), table, "", false}));
    }

    core::IntegrationSpec spec_graph;
    spec_graph.name = "claims-shards";
    spec_graph.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                        {"fact0", "fact1", rel::JoinKind::kUnion},
                        {"fact1", "dim1", rel::JoinKind::kLeftJoin},
                        {"fact0", "fact2", rel::JoinKind::kUnion},
                        {"fact2", "dim2", rel::JoinKind::kLeftJoin}};
    auto integration = system.Integrate(spec_graph);
    AMALUR_CHECK(integration.ok()) << integration.status();
    std::printf("\nUnion-of-stars target %zu x %zu (%zu shards)\n  %s\n",
                integration->metadata.target_rows(),
                integration->metadata.target_cols(),
                integration->metadata.num_shards(),
                system.Explain(*integration).explanation.c_str());
    TrainBothWays(&system, *integration, "  union-of-stars");
  }

  // ---- Conformed dimension: orders(30k) references both a customer-facing
  // and a supplier-facing dimension (1k rows each), and BOTH reference one
  // shared 40-row region table — a DAG with a conformed dimension. The
  // shared silo's columns land in the target exactly once, and the second
  // fact->branch edge is an inner join, so orders without a resolvable
  // branch1 reference drop from the target (here: none, full coverage).
  {
    rel::ConformedSnowflakeSpec spec;
    spec.fact_rows = 30000;
    spec.fact_features = 2;
    spec.branches = 2;
    spec.branch_rows = 1000;
    spec.branch_features = 6;
    spec.shared_rows = 40;
    spec.shared_features = 5;
    spec.seed = 2028;
    rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);

    core::Amalur system(options);
    for (const rel::Table& table : scenario.tables) {
      AMALUR_CHECK_OK(
          system.catalog()->RegisterSource({table.name(), table, "", false}));
    }

    core::IntegrationSpec spec_graph;
    spec_graph.name = "orders-conformed";
    spec_graph.edges = {{"fact", "branch0", rel::JoinKind::kLeftJoin},
                        {"fact", "branch1", rel::JoinKind::kInnerJoin},
                        {"branch0", "shared", rel::JoinKind::kLeftJoin},
                        {"branch1", "shared", rel::JoinKind::kLeftJoin}};
    auto integration = system.Integrate(spec_graph);
    AMALUR_CHECK(integration.ok()) << integration.status();
    std::printf(
        "\nConformed snowflake target %zu x %zu (%zu shared dimension(s))\n"
        "  %s\n",
        integration->metadata.target_rows(),
        integration->metadata.target_cols(),
        integration->metadata.num_shared_dimensions(),
        system.Explain(*integration).explanation.c_str());
    TrainBothWays(&system, *integration, "  conformed");
  }
  return 0;
}
