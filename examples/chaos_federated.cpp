// Fault-tolerant federated execution: training while the wire misbehaves.
// A seeded `FaultSchedule` makes every silo drop 10% of its messages and
// crashes one FedAvg participant mid-training; the hardened protocols
// absorb the drops with retransmissions (bitwise the same model a clean
// wire yields), degrade gracefully when a shard dies under the `kDegrade`
// policy — re-weighting FedAvg over the survivors and re-admitting the
// silo when its crash window ends — and fail cleanly with `kUnavailable`
// naming the lost silo where degradation is structurally impossible
// (vertical FLR). The same chaos schedule plugs into the `Amalur::Train`
// facade, and the executed plan reports what the run survived.

#include <cstdio>

#include "core/amalur.h"
#include "federated/fault_injection.h"
#include "federated/hfl.h"
#include "federated/vfl.h"
#include "relational/generator.h"

int main() {
  using namespace amalur;

  // --- A lossy wire under vertical FLR: 10% of every silo's messages are
  // dropped; the retry layer recovers the exact clean-run model.
  Rng rng(71);
  la::DenseMatrix labels(300, 1);
  std::vector<federated::VflParty> parties;
  for (size_t k = 0; k < 3; ++k) {
    federated::VflParty party;
    party.x = la::DenseMatrix::RandomGaussian(300, 3, &rng);
    la::DenseMatrix w = la::DenseMatrix::RandomGaussian(3, 1, &rng);
    labels.AddInPlace(party.x.Multiply(w));
    parties.push_back(std::move(party));
  }
  federated::VflOptions vfl;
  vfl.iterations = 40;
  vfl.learning_rate = 0.1;
  vfl.policy.retry.max_retries = 10;

  federated::MessageBus clean_bus;
  auto clean = federated::TrainVerticalFlrNary(parties, labels, vfl, &clean_bus);
  AMALUR_CHECK(clean.ok()) << clean.status();

  federated::FaultSchedule lossy_schedule(72);
  federated::SiloFaultProfile lossy;
  lossy.drop_rate = 0.10;
  lossy_schedule.SetDefault(lossy);
  federated::FaultyMessageBus lossy_bus(lossy_schedule);
  auto chaotic =
      federated::TrainVerticalFlrNary(parties, labels, vfl, &lossy_bus);
  AMALUR_CHECK(chaotic.ok()) << chaotic.status();

  bool identical = true;
  for (size_t k = 0; k < parties.size(); ++k) {
    identical = identical && chaotic->thetas[k] == clean->thetas[k];
  }
  std::printf("=== VFL over a 10%% lossy wire ===\n");
  std::printf("  weights identical to clean run: %s\n",
              identical ? "yes (bitwise)" : "NO");
  std::printf("  delivered %zu bytes (clean: %zu), wasted %zu bytes on %zu "
              "dropped sends, %zu retransmissions\n\n",
              chaotic->bytes_transferred, clean->bytes_transferred,
              chaotic->bytes_wasted, lossy_bus.MessagesDropped(),
              chaotic->retries);

  // --- A silo crash under vertical FLR: every party owns feature columns,
  // so the run cannot degrade — it fails cleanly, naming the lost silo.
  federated::FaultSchedule crash_schedule(73);
  federated::SiloFaultProfile mortal;
  mortal.crash_at_round = 5;
  crash_schedule.Set("P2", mortal);
  federated::FaultyMessageBus crash_bus(crash_schedule);
  auto lost = federated::TrainVerticalFlrNary(parties, labels, vfl, &crash_bus);
  std::printf("=== VFL silo crash at round 5 ===\n  %s\n\n",
              lost.status().ToString().c_str());

  // --- FedAvg under the degrade policy: one shard dies at round 10 and
  // rejoins at round 30; the rounds in between run re-weighted over the
  // survivors.
  Rng hfl_rng(74);
  la::DenseMatrix w_true = la::DenseMatrix::RandomGaussian(4, 1, &hfl_rng);
  std::vector<federated::HflPartition> shards;
  for (size_t p = 0; p < 4; ++p) {
    federated::HflPartition shard{
        la::DenseMatrix::RandomGaussian(150, 4, &hfl_rng), {}};
    shard.labels = shard.features.Multiply(w_true);
    shards.push_back(std::move(shard));
  }
  federated::HflOptions hfl;
  hfl.rounds = 40;
  hfl.learning_rate = 0.2;
  hfl.policy.on_silo_loss = federated::SiloLossAction::kDegrade;
  hfl.policy.min_quorum = 2;

  federated::FaultSchedule flaky_schedule(75);
  federated::SiloFaultProfile flaky;
  flaky.crash_at_round = 10;
  flaky.rejoin_at_round = 30;
  flaky_schedule.Set("P3", flaky);
  federated::FaultyMessageBus flaky_bus(flaky_schedule);
  auto degraded = federated::TrainHorizontalFlr(shards, hfl, &flaky_bus);
  AMALUR_CHECK(degraded.ok()) << degraded.status();
  std::printf("=== FedAvg with a crash/rejoin lifecycle (degrade policy) ===\n");
  std::printf("  silo P3 down for rounds [10, 30): %zu of %zu rounds ran "
              "degraded, dropped = {",
              degraded->rounds_degraded, hfl.rounds);
  for (const std::string& silo : degraded->silos_dropped) {
    std::printf("%s", silo.c_str());
  }
  std::printf("}\n  loss %.4f -> %.4f (the survivors keep learning; the "
              "rejoined silo resumes from the current model)\n\n",
              degraded->loss_history.front(), degraded->loss_history.back());

  // --- The same chaos through the system facade: a privacy-constrained
  // union-of-stars trains per-shard FedAvg over the faulty bus, and the
  // executed plan says what the run survived.
  rel::UnionOfStarsSpec spec;
  spec.shards = 2;
  spec.fact_rows = 150;
  spec.fact_features = 2;
  spec.dim_rows = 15;
  spec.dim_features = 3;
  spec.seed = 76;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);
  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  for (const rel::Table& table : scenario.tables) {
    AMALUR_CHECK_OK(system.catalog()->RegisterSource(
        {table.name(), table, "shard-silo", /*privacy_sensitive=*/true}));
  }
  core::IntegrationSpec edges;
  edges.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                 {"fact0", "fact1", rel::JoinKind::kUnion},
                 {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
  auto integration = system.Integrate(edges);
  AMALUR_CHECK(integration.ok()) << integration.status();

  federated::FaultSchedule facade_schedule(77);
  federated::SiloFaultProfile facade_mortal;
  facade_mortal.crash_at_round = 4;
  facade_schedule.Set("P1", facade_mortal);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 12;
  request.gd.learning_rate = 0.05;
  request.federated_policy.on_silo_loss = federated::SiloLossAction::kDegrade;
  request.fault_schedule = &facade_schedule;
  auto model = system.Train(*integration, request, "chaos-model");
  AMALUR_CHECK(model.ok()) << model.status();
  std::printf("=== Chaos through the Amalur facade ===\n  %s\n",
              model->plan().explanation.c_str());
  return 0;
}
