// Serving tier walkthrough: train once, deploy an immutable snapshot into
// the read-mostly ModelRegistry, score batched requests through the
// factorized partial-score cache, then redeploy a retrained model while the
// first snapshot keeps serving.
//
// The scenario is the classic feature-augmentation star: a fact table of
// customer orders left-joined against a small product dimension (fan-out
// 10). Factorized serving scores each fact row by indicator lookup into
// per-dimension partial scores — the dimension block is never re-multiplied
// per request.

#include <cstdio>
#include <vector>

#include "core/amalur.h"
#include "relational/generator.h"
#include "serving/deployed_model.h"
#include "serving/model_registry.h"

int main() {
  using namespace amalur;

  // --- Integrate and train (the offline side) -----------------------------
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 5000;
  spec.other_rows = 500;  // fan-out 10
  spec.base_features = 2;
  spec.other_features = 20;
  spec.seed = 29;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  core::Amalur system;
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"orders", pair.base, "warehouse", /*privacy_sensitive=*/false}));
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"products", pair.other, "catalog-db", /*privacy_sensitive=*/false}));
  auto integration =
      system.Integrate("orders", "products", rel::JoinKind::kLeftJoin);
  AMALUR_CHECK(integration.ok()) << integration.status();

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 60;
  request.gd.learning_rate = 0.05;
  auto model = system.Train(*integration, request, "spend-predictor");
  AMALUR_CHECK(model.ok()) << model.status();
  std::printf("trained 'spend-predictor' (%s) over %zu target rows\n",
              core::ExecutionStrategyToString(model->outcome().strategy_used),
              integration->metadata.target_rows());

  // --- Deploy (publish an immutable snapshot) -----------------------------
  serving::ModelRegistry registry;
  auto deployed = model->Deploy(&registry, "spend");
  AMALUR_CHECK(deployed.ok()) << deployed.status();
  std::printf("deployed as '%s' v%llu: %zu scorable rows, %zu features\n",
              (*deployed)->name().c_str(),
              static_cast<unsigned long long>((*deployed)->version()),
              (*deployed)->rows(), (*deployed)->feature_names().size());

  // --- Serve batched requests (the online side) ---------------------------
  // A request references target rows by index; the registry hands back the
  // current snapshot and the batch scores through the partial-score cache.
  auto resolve = registry.Get("spend");
  AMALUR_CHECK(resolve.ok()) << resolve.status();
  std::vector<serving::RowRef> batch;
  for (size_t i = 0; i < 8; ++i) batch.push_back({i * 137});
  auto scores = (*resolve)->PredictBatch(batch);
  AMALUR_CHECK(scores.ok()) << scores.status();
  std::printf("\nbatch of %zu rows through v%llu:\n", batch.size(),
              static_cast<unsigned long long>((*resolve)->version()));
  for (size_t i = 0; i < batch.size(); ++i) {
    std::printf("  row %5zu -> %+.4f\n", batch[i].row, scores->At(i, 0));
  }

  auto report = (*resolve)->EvaluateBatch(batch);
  AMALUR_CHECK(report.ok()) << report.status();
  std::printf("batch mse against deploy-time labels: %.4f\n", report->mse);

  // --- Redeploy without stopping the world ---------------------------------
  // Retrain (more iterations) and publish v2. The v1 snapshot held above is
  // untouched — in-flight requests finish on the version they resolved.
  request.gd.iterations = 200;
  auto retrained = system.Train(*integration, request);
  AMALUR_CHECK(retrained.ok()) << retrained.status();
  auto v2 = registry.Redeploy("spend", *retrained);
  AMALUR_CHECK(v2.ok()) << v2.status();

  auto old_scores = (*resolve)->PredictBatch(batch);  // v1, still serving
  auto new_scores = (*v2)->PredictBatch(batch);
  AMALUR_CHECK(old_scores.ok() && new_scores.ok());
  std::printf("\nafter redeploy: registry serves v%llu; held v%llu still "
              "answers\n",
              static_cast<unsigned long long>((*v2)->version()),
              static_cast<unsigned long long>((*resolve)->version()));
  std::printf("  row %zu: v1 %+.4f  vs  v2 %+.4f\n", batch[0].row,
              old_scores->At(0, 0), new_scores->At(0, 0));

  serving::ServingStats stats = (*resolve)->stats();
  std::printf("\nv1 served %llu requests / %llu rows (%llu cache hits)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.rows),
              static_cast<unsigned long long>(stats.cache_hits));
  return 0;
}
