// Feature augmentation (use case 1, §II.B): a clinic's base table is
// augmented with a discovered laboratory table. The example shows
//   1. that augmentation improves model quality (lower MSE than training on
//      the base silo alone), and
//   2. how the optimizer trades factorized vs materialized execution as the
//      join fan-out (target redundancy) grows.

#include <cstdio>

#include "common/stopwatch.h"
#include "core/amalur.h"
#include "factorized/scenario_builder.h"
#include "ml/linear_models.h"
#include "ml/training_matrix.h"
#include "relational/generator.h"

namespace {

using namespace amalur;

/// MSE of linear regression trained on the base silo only.
double BaselineMse(const rel::Table& base, size_t iterations) {
  std::vector<size_t> feature_cols;
  size_t label_col = 0;
  for (size_t j = 0; j < base.NumColumns(); ++j) {
    const std::string& name = base.column(j).name();
    if (name == "y") {
      label_col = j;
    } else if (name != "k") {
      feature_cols.push_back(j);
    }
  }
  ml::MaterializedMatrix features(*base.ToMatrix(feature_cols));
  la::DenseMatrix labels = *base.ToMatrix({label_col});
  ml::GradientDescentOptions gd;
  gd.iterations = iterations;
  gd.learning_rate = 0.05;
  return ml::TrainLinearRegression(features, labels, gd).loss_history.back();
}

}  // namespace

int main() {
  // The lab table holds 40 informative assay columns; each lab panel row
  // serves many clinic visits (fan-out 8 -> redundant target).
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 4000;
  spec.other_rows = 500;  // tuple ratio 8
  spec.base_features = 2;
  spec.other_features = 40;
  spec.seed = 2024;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  pair.base.set_name("clinic_visits");
  pair.other.set_name("lab_panels");

  std::printf("Base silo: %zu rows x %zu cols; discovered lab silo: %zu rows "
              "x %zu cols\n\n",
              pair.base.NumRows(), pair.base.NumColumns(),
              pair.other.NumRows(), pair.other.NumColumns());

  // Generic short column names (x0, z0, ...) need strong evidence to match;
  // a stricter threshold keeps the key match and rejects lookalike noise.
  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"clinic", pair.base, "clinic", false}));
  AMALUR_CHECK_OK(system.catalog()->RegisterSource(
      {"lab", pair.other, "laboratory", false}));

  core::IntegrationSpec integration_spec;
  integration_spec.name = "clinic-lab";
  integration_spec.sources = {"clinic", "lab"};
  integration_spec.relationships = {rel::JoinKind::kLeftJoin};
  auto integration = system.Integrate(integration_spec);
  AMALUR_CHECK(integration.ok()) << integration.status();
  std::printf("Integrated target schema: %s\n",
              integration->mapping.target_schema().ToString().c_str());
  std::printf("Tuple ratio %.1f, feature ratio %.1f\n\n",
              integration->metadata.TupleRatio(1),
              integration->metadata.FeatureRatio(1));

  core::Plan plan = system.Explain(*integration);
  std::printf("Optimizer: %s\n\n", plan.explanation.c_str());

  // --- Quality: augmentation beats the base-only model.
  const size_t iterations = 150;
  const double base_only = BaselineMse(pair.base, iterations);
  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = iterations;
  request.gd.learning_rate = 0.05;
  auto model = system.Train(*integration, request, "augmented-model");
  AMALUR_CHECK(model.ok()) << model.status();
  std::printf("MSE base silo only : %.4f\n", base_only);
  std::printf("MSE augmented      : %.4f   (strategy: %s, %.3fs)\n\n",
              model->outcome().loss_history.back(),
              core::ExecutionStrategyToString(model->outcome().strategy_used),
              model->outcome().seconds);

  // --- Performance: force both strategies through the facade and time them.
  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto fact = system.Train(*integration, request);
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto mat = system.Train(*integration, request);
  AMALUR_CHECK(fact.ok() && mat.ok()) << "execution failed";
  std::printf("Forced factorized  : %.3fs\n", fact->outcome().seconds);
  std::printf("Forced materialized: %.3fs\n", mat->outcome().seconds);
  std::printf("Weight agreement   : max |Δw| = %.2e (factorization does not "
              "change the model)\n",
              fact->weights().MaxAbsDiff(mat->weights()));
  return 0;
}
